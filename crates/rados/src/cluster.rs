//! The cluster: OSD maps, replicated transaction execution, reads,
//! snapshots, scrub/repair, and the closed-loop benchmark entry point.

use crate::cost::{self, OsdWork, ResourceHandles, TestbedProfile};
use crate::object::{Object, ObjectStat, PHYS_BLOCK};
use crate::placement::PlacementMap;
use crate::transaction::{ObjectReads, ReadOp, ReadResult, SnapContext, Transaction, TxOp};
use crate::{RadosError, Result, SnapId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use vdisk_kv::CostProfile;
use vdisk_sim::{ClosedLoopStats, Plan, SimDuration, Simulator};

/// Whether object payload bytes are materialized in memory.
///
/// `Discarded` keeps only sizes and OMAP content — identical cost
/// plans at a fraction of the memory — and exists for the benchmark
/// harness, which sweeps up to 4 MB IOs and never re-reads plaintext.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PayloadMode {
    /// Store every byte (functional tests, examples).
    #[default]
    Stored,
    /// Track sizes only; reads return zeros.
    Discarded,
}

/// Scrub outcome: objects whose replicas disagree.
#[derive(Debug, Clone, Default)]
pub struct ScrubReport {
    /// Objects checked.
    pub objects_checked: usize,
    /// Names of divergent objects.
    pub divergent: Vec<String>,
}

impl ScrubReport {
    /// True when every replica of every object agrees.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.divergent.is_empty()
    }
}

/// Counters of client-visible operations the cluster has served.
/// Tests and tooling use them to observe batching behaviour (e.g.
/// "a striped write issued exactly N transactions in one batch").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Transactions applied, including those inside batches.
    pub transactions: u64,
    /// [`Cluster::execute_batch`] invocations.
    pub batches: u64,
    /// Per-object read requests served (batched reads count each
    /// object they touch).
    pub read_ops: u64,
}

struct State {
    osds: Vec<HashMap<String, Object>>,
    placement: PlacementMap,
    sim: Simulator,
    handles: ResourceHandles,
    testbed: TestbedProfile,
    kv_cost: CostProfile,
    payload: PayloadMode,
    snap_seq: u64,
    stats: ExecStats,
}

/// Configures and builds a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    osd_count: usize,
    replicas: usize,
    pg_count: u64,
    payload: PayloadMode,
    testbed: TestbedProfile,
    kv_cost: CostProfile,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            osd_count: 3,
            replicas: 3,
            pg_count: 128,
            payload: PayloadMode::Stored,
            testbed: TestbedProfile::default(),
            kv_cost: CostProfile::default(),
        }
    }
}

impl ClusterBuilder {
    /// Number of OSD nodes (default 3, as in the paper).
    #[must_use]
    pub fn osd_count(mut self, n: usize) -> Self {
        self.osd_count = n;
        self
    }

    /// Replication factor (default 3, Ceph's default, as in the paper).
    #[must_use]
    pub fn replicas(mut self, n: usize) -> Self {
        self.replicas = n;
        self
    }

    /// Placement-group count (default 128).
    #[must_use]
    pub fn pg_count(mut self, n: u64) -> Self {
        self.pg_count = n;
        self
    }

    /// Payload retention mode.
    #[must_use]
    pub fn payload_mode(mut self, mode: PayloadMode) -> Self {
        self.payload = mode;
        self
    }

    /// Overrides the hardware cost profile.
    #[must_use]
    pub fn testbed(mut self, testbed: TestbedProfile) -> Self {
        self.testbed = testbed;
        self
    }

    /// Overrides the OMAP KV cost profile.
    #[must_use]
    pub fn kv_cost(mut self, kv_cost: CostProfile) -> Self {
        self.kv_cost = kv_cost;
        self
    }

    /// Builds the cluster.
    ///
    /// # Panics
    ///
    /// Panics if the replica count exceeds the OSD count.
    #[must_use]
    pub fn build(self) -> Cluster {
        let mut sim = Simulator::new();
        let handles = self.testbed.install(&mut sim, self.osd_count);
        let placement = PlacementMap::new(self.osd_count, self.replicas, self.pg_count);
        Cluster {
            state: Arc::new(Mutex::new(State {
                osds: (0..self.osd_count).map(|_| HashMap::new()).collect(),
                placement,
                sim,
                handles,
                testbed: self.testbed,
                kv_cost: self.kv_cost,
                payload: self.payload,
                snap_seq: 0,
                stats: ExecStats::default(),
            })),
        }
    }
}

/// A handle to the simulated Ceph-like cluster. Cheap to clone; all
/// clones share the same state.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Clone)]
pub struct Cluster {
    state: Arc<Mutex<State>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.lock();
        write!(
            f,
            "Cluster({} osds, {} replicas)",
            state.osds.len(),
            state.placement.replicas()
        )
    }
}

impl Cluster {
    /// Starts building a cluster.
    #[must_use]
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// Acquires the shared state; a panic while holding the lock only
    /// poisons functional state, so recover rather than propagate.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Checks a transaction without touching any replica. Shared by
    /// the single and batched execution paths so both reject malformed
    /// input before **any** mutation (all-or-nothing).
    fn validate_tx(tx: &Transaction) -> Result<()> {
        if tx.object.is_empty() {
            return Err(RadosError::InvalidArgument("empty object name".into()));
        }
        for op in &tx.ops {
            match op {
                TxOp::OmapSet(entries) => {
                    if entries.iter().any(|(k, _)| k.is_empty()) {
                        return Err(RadosError::InvalidArgument("empty omap key".into()));
                    }
                }
                TxOp::OmapRemove(keys) => {
                    if keys.iter().any(Vec::is_empty) {
                        return Err(RadosError::InvalidArgument("empty omap key".into()));
                    }
                }
                TxOp::Write { data, .. } => {
                    if data.is_empty() {
                        return Err(RadosError::InvalidArgument("empty write".into()));
                    }
                }
                TxOp::Truncate(_) | TxOp::SetXattr(..) | TxOp::Delete => {}
            }
        }
        Ok(())
    }

    /// Applies one already-validated transaction on every replica and
    /// builds its cost plan.
    fn apply_tx(state: &mut State, tx: &Transaction) -> Plan {
        let snapc = tx.snapc.unwrap_or(SnapContext {
            seq: SnapId(state.snap_seq),
        });
        let payload_mode = state.payload;
        let acting = state.placement.acting_set(&tx.object);
        let payload = tx.payload_bytes();

        let deferred_threshold = state.testbed.deferred_write_threshold;
        let mut work: Vec<OsdWork> = Vec::with_capacity(acting.len());
        for osd in &acting {
            let store_payload = payload_mode == PayloadMode::Stored;
            let kv_cost = state.kv_cost.clone();
            let objects = &mut state.osds[osd.0];
            let object = objects
                .entry(tx.object.clone())
                .or_insert_with(|| Object::new(store_payload, snapc));
            object.prepare_write(snapc);

            let mut osd_work = OsdWork::default();
            let mut kv_time = SimDuration::ZERO;
            let mut deleted = false;
            for op in &tx.ops {
                match op {
                    TxOp::Write { offset, data } => {
                        let profile = object.head.write(*offset, data);
                        if data.len() as u64 <= deferred_threshold && profile.rmw_read_ops > 0 {
                            // Small overwrite: the deferred/journal path
                            // absorbs it without a foreground RMW.
                            osd_work.deferred_writes.push(profile.write_bytes);
                        } else if data.len() as u64 <= deferred_threshold {
                            osd_work.deferred_writes.push(profile.write_bytes);
                        } else {
                            osd_work.rmw_reads.0 += profile.rmw_read_ops;
                            osd_work.rmw_reads.1 += profile.rmw_read_bytes;
                            osd_work.disk_writes.push(profile.write_bytes);
                        }
                    }
                    TxOp::Truncate(size) => {
                        object.head.truncate(*size);
                    }
                    TxOp::OmapSet(entries) => {
                        let batch: Vec<(Vec<u8>, Option<Vec<u8>>)> = entries
                            .iter()
                            .map(|(k, v)| (k.clone(), Some(v.clone())))
                            .collect();
                        let receipt = object.head.omap.write_batch(batch);
                        kv_time += kv_cost.write_time(&receipt);
                        osd_work.kv_wal_bytes += receipt.wal_bytes;
                    }
                    TxOp::OmapRemove(keys) => {
                        let batch: Vec<(Vec<u8>, Option<Vec<u8>>)> =
                            keys.iter().map(|k| (k.clone(), None)).collect();
                        let receipt = object.head.omap.write_batch(batch);
                        kv_time += kv_cost.write_time(&receipt);
                        osd_work.kv_wal_bytes += receipt.wal_bytes;
                    }
                    TxOp::SetXattr(name, value) => {
                        object.head.xattrs.insert(name.clone(), value.clone());
                    }
                    TxOp::Delete => {
                        deleted = true;
                    }
                }
            }
            osd_work.kv_time = kv_time;
            if deleted {
                objects.remove(&tx.object);
            }
            work.push(osd_work);
        }

        cost::write_plan(&state.handles, &state.testbed, payload, &acting, &work)
    }

    /// Applies a transaction atomically on every replica and returns
    /// its cost plan.
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::InvalidArgument`] if any op is malformed;
    /// in that case **no** op has been applied (all-or-nothing).
    pub fn execute(&self, tx: Transaction) -> Result<Plan> {
        let mut state = self.lock();
        Self::validate_tx(&tx)?;
        state.stats.transactions += 1;
        Ok(Self::apply_tx(&mut state, &tx))
    }

    /// Applies many transactions under one cluster round trip and
    /// returns [`Plan::par`] of their costs: the dispatch stage of a
    /// vectored IO, where every object extent's transaction is in
    /// flight concurrently.
    ///
    /// Validation runs over the **whole batch** before any transaction
    /// is applied, extending the single-transaction all-or-nothing
    /// guarantee to the batch.
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::InvalidArgument`] if any transaction in
    /// the batch is malformed; no transaction has been applied then.
    pub fn execute_batch(&self, txs: Vec<Transaction>) -> Result<Plan> {
        let mut state = self.lock();
        for tx in &txs {
            Self::validate_tx(tx)?;
        }
        state.stats.batches += 1;
        state.stats.transactions += txs.len() as u64;
        let plans: Vec<Plan> = txs
            .iter()
            .map(|tx| Self::apply_tx(&mut state, tx))
            .collect();
        Ok(Plan::par(plans))
    }

    /// Operation counters since the cluster was built.
    #[must_use]
    pub fn exec_stats(&self) -> ExecStats {
        self.lock().stats
    }

    /// Executes read operations against the primary replica.
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::NoSuchObject`] if the object does not
    /// exist, or [`RadosError::NoSuchSnapshot`] if it did not exist yet
    /// at the requested snapshot.
    pub fn read(
        &self,
        object: &str,
        snap: Option<SnapId>,
        ops: &[ReadOp],
    ) -> Result<(Vec<ReadResult>, Plan)> {
        let mut state = self.lock();
        state.stats.read_ops += 1;
        Self::read_one(&state, object, snap, ops)
    }

    /// Serves many per-object read requests in one round trip: the
    /// read half of the vectored IO path. Returns one result slot per
    /// request plus [`Plan::par`] of the per-object costs. Objects
    /// absent (now, or at `snap`) yield `None` so striped callers can
    /// zero-fill sparse extents without failing the whole batch.
    ///
    /// # Errors
    ///
    /// Propagates any error other than a missing object/snapshot.
    pub fn read_batch(
        &self,
        snap: Option<SnapId>,
        requests: &[ObjectReads],
    ) -> Result<(Vec<Option<Vec<ReadResult>>>, Plan)> {
        let mut state = self.lock();
        state.stats.read_ops += requests.len() as u64;
        let mut results = Vec::with_capacity(requests.len());
        let mut plans = Vec::with_capacity(requests.len());
        for request in requests {
            match Self::read_one(&state, &request.object, snap, &request.ops) {
                Ok((res, plan)) => {
                    results.push(Some(res));
                    plans.push(plan);
                }
                Err(RadosError::NoSuchObject(_) | RadosError::NoSuchSnapshot { .. }) => {
                    results.push(None);
                }
                Err(e) => return Err(e),
            }
        }
        Ok((results, Plan::par(plans)))
    }

    /// Read execution shared by [`Cluster::read`] and
    /// [`Cluster::read_batch`].
    fn read_one(
        state: &State,
        object: &str,
        snap: Option<SnapId>,
        ops: &[ReadOp],
    ) -> Result<(Vec<ReadResult>, Plan)> {
        let primary = state.placement.primary(object);
        let obj = state.osds[primary.0]
            .get(object)
            .ok_or_else(|| RadosError::NoSuchObject(object.to_string()))?;
        let content = obj
            .content_at(snap)
            .ok_or_else(|| RadosError::NoSuchSnapshot {
                object: object.to_string(),
                snap: snap.unwrap_or_default(),
            })?;

        let mut results = Vec::with_capacity(ops.len());
        let mut work = OsdWork::default();
        let mut response_bytes = 0u64;
        for op in ops {
            match op {
                ReadOp::Read { offset, len } => {
                    let data = content.read(*offset, *len);
                    // Physical read: whole blocks covering the extent.
                    let start_block = offset / PHYS_BLOCK;
                    let end_block = (offset + len).div_ceil(PHYS_BLOCK).max(start_block + 1);
                    work.disk_reads.push((end_block - start_block) * PHYS_BLOCK);
                    response_bytes += *len;
                    results.push(ReadResult::Data(data));
                }
                ReadOp::OmapGetRange { start, end } => {
                    let (entries, receipt) = content.omap.range(start, end);
                    work.kv_time += state.kv_cost.read_time(&receipt);
                    response_bytes += receipt.bytes_returned;
                    results.push(ReadResult::OmapEntries(entries));
                }
                ReadOp::OmapGetKeys(keys) => {
                    let mut entries = Vec::new();
                    for key in keys {
                        let (value, receipt) = content.omap.get(key);
                        work.kv_time += state.kv_cost.read_time(&receipt);
                        if let Some(value) = value {
                            response_bytes += (key.len() + value.len()) as u64;
                            entries.push((key.clone(), value));
                        }
                    }
                    results.push(ReadResult::OmapEntries(entries));
                }
                ReadOp::GetXattr(name) => {
                    let value = content.xattrs.get(name).cloned();
                    response_bytes += value.as_ref().map_or(0, Vec::len) as u64;
                    results.push(ReadResult::Xattr(value));
                }
                ReadOp::Stat => {
                    results.push(ReadResult::Stat {
                        size: content.size(),
                    });
                }
            }
        }
        let plan = cost::read_plan(
            &state.handles,
            &state.testbed,
            primary,
            response_bytes,
            &work,
        );
        Ok((results, plan))
    }

    /// Takes a cluster-wide self-managed snapshot; subsequent writes
    /// copy-on-write any object they touch.
    pub fn create_snap(&self) -> SnapId {
        let mut state = self.lock();
        state.snap_seq += 1;
        SnapId(state.snap_seq)
    }

    /// The current snapshot sequence.
    #[must_use]
    pub fn snap_seq(&self) -> SnapId {
        SnapId(self.lock().snap_seq)
    }

    /// Whether an object exists (on its primary).
    #[must_use]
    pub fn object_exists(&self, object: &str) -> bool {
        let state = self.lock();
        let primary = state.placement.primary(object);
        state.osds[primary.0].contains_key(object)
    }

    /// Object metadata from the primary.
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::NoSuchObject`] if the object is absent.
    pub fn stat(&self, object: &str) -> Result<ObjectStat> {
        let state = self.lock();
        let primary = state.placement.primary(object);
        state.osds[primary.0]
            .get(object)
            .map(Object::stat)
            .ok_or_else(|| RadosError::NoSuchObject(object.to_string()))
    }

    /// All object names (sorted), from every OSD's primary view.
    #[must_use]
    pub fn list_objects(&self) -> Vec<String> {
        let state = self.lock();
        let mut names: Vec<String> = state.osds.iter().flat_map(|m| m.keys().cloned()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// The installed resource handles (for plan construction by upper
    /// layers, e.g. client-side crypto cost).
    #[must_use]
    pub fn resources(&self) -> ResourceHandles {
        self.lock().handles.clone()
    }

    /// The testbed profile in effect.
    #[must_use]
    pub fn testbed_profile(&self) -> TestbedProfile {
        self.lock().testbed.clone()
    }

    /// Convenience: a plan occupying the client crypto workers for
    /// `bytes` of encryption/decryption work.
    #[must_use]
    pub fn crypto_plan(&self, bytes: u64) -> Plan {
        let state = self.lock();
        Plan::op(state.handles.client_crypto, bytes)
    }

    /// Runs pre-built plans in a closed loop (fio-style, fixed queue
    /// depth) against this cluster's simulated hardware.
    #[must_use]
    pub fn run_closed_loop(&self, queue_depth: usize, plans: Vec<(Plan, u64)>) -> ClosedLoopStats {
        let mut state = self.lock();
        let total = plans.len() as u64;
        let mut plans = plans.into_iter();
        state.sim.run_closed_loop(queue_depth, total, move |_| {
            plans.next().expect("plan count matches total_ops")
        })
    }

    /// Per-resource utilization of the last closed-loop run.
    #[must_use]
    pub fn utilization_report(&self) -> Vec<vdisk_sim::ResourceUsage> {
        self.lock().sim.utilization_report()
    }

    /// Verifies that all replicas of all objects agree (like Ceph's
    /// deep scrub).
    #[must_use]
    pub fn scrub(&self) -> ScrubReport {
        let state = self.lock();
        let mut report = ScrubReport::default();
        let mut names: Vec<String> = state.osds.iter().flat_map(|m| m.keys().cloned()).collect();
        names.sort_unstable();
        names.dedup();
        for name in names {
            report.objects_checked += 1;
            let acting = state.placement.acting_set(&name);
            let prints: Vec<Option<u64>> = acting
                .iter()
                .map(|osd| state.osds[osd.0].get(&name).map(|o| o.head.fingerprint()))
                .collect();
            let first = &prints[0];
            if prints.iter().any(|p| p != first) {
                report.divergent.push(name);
            }
        }
        report
    }

    /// Fault injection: silently corrupts one byte on a **non-primary**
    /// replica (as a failing disk or torn replication would). Scrub
    /// must detect it; [`Cluster::repair`] must fix it.
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::InvalidArgument`] if `replica_index` is 0
    /// (the primary) or out of range, or [`RadosError::NoSuchObject`]
    /// if that replica holds no such object.
    pub fn damage_replica(&self, object: &str, replica_index: usize, offset: usize) -> Result<()> {
        let mut state = self.lock();
        let acting = state.placement.acting_set(object);
        if replica_index == 0 || replica_index >= acting.len() {
            return Err(RadosError::InvalidArgument(format!(
                "replica_index {replica_index} out of range (1..{})",
                acting.len()
            )));
        }
        let osd = acting[replica_index];
        let obj = state.osds[osd.0]
            .get_mut(object)
            .ok_or_else(|| RadosError::NoSuchObject(object.to_string()))?;
        obj.head.poke(offset, 0xFF);
        Ok(())
    }

    /// Repairs an object by re-replicating the primary's copy (Ceph's
    /// `pg repair` policy: the primary is authoritative).
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::NoSuchObject`] if the primary holds no
    /// such object.
    pub fn repair(&self, object: &str) -> Result<()> {
        let mut state = self.lock();
        let acting = state.placement.acting_set(object);
        let primary_copy = state.osds[acting[0].0]
            .get(object)
            .cloned()
            .ok_or_else(|| RadosError::NoSuchObject(object.to_string()))?;
        for osd in &acting[1..] {
            state.osds[osd.0].insert(object.to_string(), primary_copy.clone());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::builder().build()
    }

    #[test]
    fn write_then_read_round_trips() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(100, b"hello world".to_vec());
        c.execute(tx).unwrap();
        let (results, plan) = c
            .read(
                "obj",
                None,
                &[ReadOp::Read {
                    offset: 100,
                    len: 11,
                }],
            )
            .unwrap();
        assert_eq!(results[0].as_data(), b"hello world");
        assert!(plan.op_count() > 0);
    }

    #[test]
    fn reads_of_missing_objects_fail() {
        let c = cluster();
        assert_eq!(
            c.read("ghost", None, &[ReadOp::Stat]).unwrap_err(),
            RadosError::NoSuchObject("ghost".into())
        );
    }

    #[test]
    fn transaction_is_atomic_on_validation_failure() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, b"data".to_vec());
        tx.omap_set(vec![(Vec::new(), b"bad-key".to_vec())]); // invalid
        assert!(matches!(c.execute(tx), Err(RadosError::InvalidArgument(_))));
        assert!(
            !c.object_exists("obj"),
            "no partial state may survive a rejected transaction"
        );
    }

    #[test]
    fn omap_set_and_range() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![1]);
        tx.omap_set(vec![
            (b"iv.0001".to_vec(), vec![0x11; 16]),
            (b"iv.0000".to_vec(), vec![0x22; 16]),
        ]);
        c.execute(tx).unwrap();
        let (results, _) = c
            .read(
                "obj",
                None,
                &[ReadOp::OmapGetRange {
                    start: b"iv.".to_vec(),
                    end: b"iv.\xff".to_vec(),
                }],
            )
            .unwrap();
        let entries = results[0].as_omap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, b"iv.0000");
    }

    #[test]
    fn snapshots_preserve_history() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, b"v1".to_vec());
        c.execute(tx).unwrap();
        let snap1 = c.create_snap();
        let mut tx = Transaction::new("obj");
        tx.write(0, b"v2".to_vec());
        c.execute(tx).unwrap();

        let (head, _) = c
            .read("obj", None, &[ReadOp::Read { offset: 0, len: 2 }])
            .unwrap();
        let (old, _) = c
            .read("obj", Some(snap1), &[ReadOp::Read { offset: 0, len: 2 }])
            .unwrap();
        assert_eq!(head[0].as_data(), b"v2");
        assert_eq!(old[0].as_data(), b"v1");
    }

    #[test]
    fn snapshot_before_birth_is_absent() {
        let c = cluster();
        let snap = c.create_snap();
        let mut tx = Transaction::new("newborn");
        tx.write(0, b"x".to_vec());
        c.execute(tx).unwrap();
        assert!(matches!(
            c.read("newborn", Some(snap), &[ReadOp::Stat]),
            Err(RadosError::NoSuchSnapshot { .. })
        ));
    }

    #[test]
    fn omap_survives_snapshots_with_cow() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![1]);
        tx.omap_set(vec![(b"k".to_vec(), b"old".to_vec())]);
        c.execute(tx).unwrap();
        let snap = c.create_snap();
        let mut tx = Transaction::new("obj");
        tx.omap_set(vec![(b"k".to_vec(), b"new".to_vec())]);
        c.execute(tx).unwrap();

        let (head, _) = c
            .read("obj", None, &[ReadOp::OmapGetKeys(vec![b"k".to_vec()])])
            .unwrap();
        let (old, _) = c
            .read(
                "obj",
                Some(snap),
                &[ReadOp::OmapGetKeys(vec![b"k".to_vec()])],
            )
            .unwrap();
        assert_eq!(head[0].as_omap()[0].1, b"new");
        assert_eq!(old[0].as_omap()[0].1, b"old", "OMAP must be COW'd too");
    }

    #[test]
    fn scrub_detects_and_repair_fixes_divergence() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![0xAB; 1024]);
        c.execute(tx).unwrap();
        assert!(c.scrub().is_clean());

        c.damage_replica("obj", 1, 10).unwrap();
        let report = c.scrub();
        assert_eq!(report.divergent, vec!["obj".to_string()]);

        c.repair("obj").unwrap();
        assert!(c.scrub().is_clean());
    }

    #[test]
    fn damage_primary_is_rejected() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![1]);
        c.execute(tx).unwrap();
        assert!(c.damage_replica("obj", 0, 0).is_err());
        assert!(c.damage_replica("obj", 9, 0).is_err());
    }

    #[test]
    fn delete_removes_everywhere() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![1]);
        c.execute(tx).unwrap();
        assert!(c.object_exists("obj"));
        let mut tx = Transaction::new("obj");
        tx.delete();
        c.execute(tx).unwrap();
        assert!(!c.object_exists("obj"));
        assert_eq!(c.list_objects().len(), 0);
    }

    #[test]
    fn xattrs_round_trip() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![0]);
        tx.set_xattr("rbd.size", 4096u64.to_le_bytes().to_vec());
        c.execute(tx).unwrap();
        let (results, _) = c
            .read("obj", None, &[ReadOp::GetXattr("rbd.size".into())])
            .unwrap();
        assert_eq!(
            results[0],
            ReadResult::Xattr(Some(4096u64.to_le_bytes().to_vec()))
        );
        let (results, _) = c
            .read("obj", None, &[ReadOp::GetXattr("missing".into())])
            .unwrap();
        assert_eq!(results[0], ReadResult::Xattr(None));
    }

    #[test]
    fn discarded_payload_mode_keeps_sizes() {
        let c = Cluster::builder()
            .payload_mode(PayloadMode::Discarded)
            .build();
        let mut tx = Transaction::new("obj");
        tx.write(4096, vec![7; 4096]);
        c.execute(tx).unwrap();
        assert_eq!(c.stat("obj").unwrap().size, 8192);
        let (results, _) = c
            .read(
                "obj",
                None,
                &[ReadOp::Read {
                    offset: 4096,
                    len: 4096,
                }],
            )
            .unwrap();
        assert_eq!(results[0].as_data(), &vec![0u8; 4096][..], "payload gone");
    }

    #[test]
    fn closed_loop_runs_plans() {
        let c = cluster();
        let mut plans = Vec::new();
        for i in 0..64 {
            let mut tx = Transaction::new(format!("obj{i}"));
            tx.write(0, vec![0u8; 4096]);
            plans.push((c.execute(tx).unwrap(), 4096));
        }
        let stats = c.run_closed_loop(8, plans);
        assert_eq!(stats.ops, 64);
        assert!(stats.bandwidth_mb_s() > 0.0);
        let report = c.utilization_report();
        assert!(report.iter().any(|r| r.ops > 0));
    }

    #[test]
    fn replicas_actually_hold_copies() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, b"replicated".to_vec());
        c.execute(tx).unwrap();
        // All three OSDs hold the object (3-way replication on 3 OSDs).
        let state = c.lock();
        for (i, osd) in state.osds.iter().enumerate() {
            assert!(osd.contains_key("obj"), "osd {i} missing the object");
        }
    }

    #[test]
    fn execute_batch_applies_all_and_fans_out() {
        let c = cluster();
        let txs: Vec<Transaction> = (0..4)
            .map(|i| {
                let mut tx = Transaction::new(format!("obj{i}"));
                tx.write(0, vec![i as u8; 4096]);
                tx
            })
            .collect();
        let plan = c.execute_batch(txs).unwrap();
        match &plan {
            Plan::Par(children) => assert_eq!(children.len(), 4),
            other => panic!("batch dispatch must be parallel, got {other:?}"),
        }
        for i in 0..4 {
            assert!(c.object_exists(&format!("obj{i}")));
        }
        let stats = c.exec_stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.transactions, 4);
    }

    #[test]
    fn execute_batch_is_all_or_nothing_across_transactions() {
        let c = cluster();
        let mut good = Transaction::new("good");
        good.write(0, vec![1; 16]);
        let mut bad = Transaction::new("bad");
        bad.write(0, Vec::new()); // invalid: empty write
        assert!(matches!(
            c.execute_batch(vec![good, bad]),
            Err(RadosError::InvalidArgument(_))
        ));
        assert!(
            !c.object_exists("good"),
            "a bad transaction must reject the whole batch before any applies"
        );
        assert_eq!(c.exec_stats().transactions, 0);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let c = cluster();
        assert_eq!(c.execute_batch(Vec::new()).unwrap(), Plan::Noop);
    }

    #[test]
    fn read_batch_zero_fills_missing_objects() {
        let c = cluster();
        let mut tx = Transaction::new("present");
        tx.write(0, b"here".to_vec());
        c.execute(tx).unwrap();
        let (results, plan) = c
            .read_batch(
                None,
                &[
                    ObjectReads::new("present", vec![ReadOp::Read { offset: 0, len: 4 }]),
                    ObjectReads::new("ghost", vec![ReadOp::Read { offset: 0, len: 4 }]),
                ],
            )
            .unwrap();
        assert_eq!(results[0].as_ref().unwrap()[0].as_data(), b"here");
        assert!(results[1].is_none(), "missing object reads as a hole");
        assert!(plan.op_count() > 0);
        assert_eq!(c.exec_stats().read_ops, 2);
    }

    #[test]
    fn batched_and_single_execution_leave_identical_state() {
        let build = |batched: bool| {
            let c = cluster();
            let txs: Vec<Transaction> = (0..3)
                .map(|i| {
                    let mut tx = Transaction::new(format!("obj{i}"));
                    tx.write(i * 512, vec![0xC0 + i as u8; 2048]);
                    tx.omap_set(vec![(vec![i as u8 + 1], vec![0xEE; 16])]);
                    tx
                })
                .collect();
            if batched {
                c.execute_batch(txs).unwrap();
            } else {
                for tx in txs {
                    c.execute(tx).unwrap();
                }
            }
            c
        };
        let (single, batched) = (build(false), build(true));
        for i in 0..3 {
            let name = format!("obj{i}");
            let ops = [
                ReadOp::Read {
                    offset: 0,
                    len: 4096,
                },
                ReadOp::OmapGetRange {
                    start: vec![],
                    end: vec![0xFF],
                },
            ];
            let (a, _) = single.read(&name, None, &ops).unwrap();
            let (b, _) = batched.read(&name, None, &ops).unwrap();
            assert_eq!(a, b, "object {name} diverged between paths");
        }
    }

    #[test]
    fn snap_ids_are_monotonic() {
        let c = cluster();
        let a = c.create_snap();
        let b = c.create_snap();
        assert!(b > a);
        assert_eq!(c.snap_seq(), b);
    }
}
