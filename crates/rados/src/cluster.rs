//! The cluster façade: OSD maps (sharded by placement), replicated
//! transaction execution, reads, snapshots, scrub/repair, and the
//! closed-loop benchmark entry point.
//!
//! State is split three ways (the sharding the ROADMAP's async-dispatch
//! item asked for):
//!
//! - an immutable control plane ([`crate::state::ControlPlane`]):
//!   placement, cost profiles, resource handles, plus atomic counters —
//!   read by every worker with no lock;
//! - N object [`crate::shard::Shard`]s keyed by placement group, each
//!   behind its own lock — an object's whole acting set lives in one
//!   shard, so per-object transactions and reads touch exactly one
//!   lock;
//! - the simulator, behind its own lock (only the closed-loop harness
//!   mutates it).
//!
//! [`Cluster::execute_batch`] validates a whole batch up front
//! (all-or-nothing), groups transactions by shard, and applies the
//! groups **concurrently** with scoped threads; [`Cluster::read_batch`]
//! fans out the same way.

use crate::cost::{ResourceHandles, TestbedProfile};
use crate::placement::PlacementMap;
use crate::shard::{Shard, ShardState};
use crate::state::{ApplyConcurrency, ControlPlane};
use crate::transaction::{ObjectReads, ReadOp, ReadResult, Transaction, TxOp};
use crate::{RadosError, Result, SnapId};
use std::sync::{Arc, Mutex, PoisonError};
use vdisk_kv::CostProfile;
use vdisk_sim::{ClosedLoopStats, Plan, Simulator};

/// Whether object payload bytes are materialized in memory.
///
/// `Discarded` keeps only sizes and OMAP content — identical cost
/// plans at a fraction of the memory — and exists for the benchmark
/// harness, which sweeps up to 4 MB IOs and never re-reads plaintext.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PayloadMode {
    /// Store every byte (functional tests, examples).
    #[default]
    Stored,
    /// Track sizes only; reads return zeros.
    Discarded,
}

/// Scrub outcome: objects whose replicas disagree.
#[derive(Debug, Clone, Default)]
pub struct ScrubReport {
    /// Objects checked.
    pub objects_checked: usize,
    /// Names of divergent objects.
    pub divergent: Vec<String>,
}

impl ScrubReport {
    /// True when every replica of every object agrees.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.divergent.is_empty()
    }
}

/// Counters of client-visible operations the cluster has served.
/// Tests and tooling use them to observe batching and sharding
/// behaviour (e.g. "a striped write issued exactly N transactions in
/// one batch, fanned out over M shards").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Transactions applied, including those inside batches.
    pub transactions: u64,
    /// [`Cluster::execute_batch`] invocations.
    pub batches: u64,
    /// Per-object read requests served (batched reads count each
    /// object they touch).
    pub read_ops: u64,
    /// Largest number of distinct shards one batch (write or read)
    /// fanned out over — deterministic potential parallelism.
    pub shard_fanout_max: u64,
    /// High-water mark of shard groups observed applying at the same
    /// instant — realized wall-clock parallelism (scheduling-
    /// dependent, so tests should treat it as a lower-bound signal).
    pub shard_concurrency_peak: u64,
}

/// Configures and builds a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    osd_count: usize,
    replicas: usize,
    pg_count: u64,
    shard_count: usize,
    concurrent_apply: Option<bool>,
    payload: PayloadMode,
    testbed: TestbedProfile,
    kv_cost: CostProfile,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            osd_count: 3,
            replicas: 3,
            pg_count: 128,
            shard_count: 8,
            concurrent_apply: None,
            payload: PayloadMode::Stored,
            testbed: TestbedProfile::default(),
            kv_cost: CostProfile::default(),
        }
    }
}

impl ClusterBuilder {
    /// Number of OSD nodes (default 3, as in the paper).
    #[must_use]
    pub fn osd_count(mut self, n: usize) -> Self {
        self.osd_count = n;
        self
    }

    /// Replication factor (default 3, Ceph's default, as in the paper).
    #[must_use]
    pub fn replicas(mut self, n: usize) -> Self {
        self.replicas = n;
        self
    }

    /// Placement-group count (default 128).
    #[must_use]
    pub fn pg_count(mut self, n: u64) -> Self {
        self.pg_count = n;
        self
    }

    /// Number of state shards batches fan out over (default 8; clamped
    /// to at least 1). `1` reproduces the old single-lock behaviour.
    #[must_use]
    pub fn shard_count(mut self, n: usize) -> Self {
        self.shard_count = n.max(1);
        self
    }

    /// Whether multi-shard batches apply on scoped threads (one per
    /// touched shard). Defaults to auto: on a multi-core host, threads
    /// whenever the batch carries enough work to amortize spawn/join
    /// (small batches stay inline); on a single core, always inline
    /// (threads cannot overlap in wall-clock there, so spawning them
    /// would be pure overhead). `true` forces threads for every
    /// multi-shard batch — the hook tests use to exercise the
    /// concurrent path regardless of host or batch size; `false`
    /// forces inline application.
    #[must_use]
    pub fn concurrent_apply(mut self, enabled: bool) -> Self {
        self.concurrent_apply = Some(enabled);
        self
    }

    /// Payload retention mode.
    #[must_use]
    pub fn payload_mode(mut self, mode: PayloadMode) -> Self {
        self.payload = mode;
        self
    }

    /// Overrides the hardware cost profile.
    #[must_use]
    pub fn testbed(mut self, testbed: TestbedProfile) -> Self {
        self.testbed = testbed;
        self
    }

    /// Overrides the OMAP KV cost profile.
    #[must_use]
    pub fn kv_cost(mut self, kv_cost: CostProfile) -> Self {
        self.kv_cost = kv_cost;
        self
    }

    /// Builds the cluster.
    ///
    /// # Panics
    ///
    /// Panics if the replica count exceeds the OSD count.
    #[must_use]
    pub fn build(self) -> Cluster {
        let mut sim = Simulator::new();
        let handles = self.testbed.install(&mut sim, self.osd_count);
        let placement = PlacementMap::new(self.osd_count, self.replicas, self.pg_count);
        let shards: Vec<Shard> = (0..self.shard_count)
            .map(|_| Shard::new(self.osd_count))
            .collect();
        let apply_concurrency = match self.concurrent_apply {
            Some(true) => ApplyConcurrency::Always,
            Some(false) => ApplyConcurrency::Never,
            None if std::thread::available_parallelism().map_or(1, usize::from) > 1 => {
                ApplyConcurrency::Auto
            }
            None => ApplyConcurrency::Never,
        };
        Cluster {
            control: Arc::new(ControlPlane::new(
                placement,
                handles,
                self.testbed,
                self.kv_cost,
                self.payload,
                self.shard_count,
                apply_concurrency,
            )),
            shards: shards.into(),
            sim: Arc::new(Mutex::new(sim)),
        }
    }
}

/// A handle to the simulated Ceph-like cluster. Cheap to clone; all
/// clones share the same state.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Clone)]
pub struct Cluster {
    control: Arc<ControlPlane>,
    shards: Arc<[Shard]>,
    sim: Arc<Mutex<Simulator>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Cluster({} osds, {} replicas, {} shards)",
            self.control.placement.osd_count(),
            self.control.placement.replicas(),
            self.shards.len()
        )
    }
}

impl Cluster {
    /// Starts building a cluster.
    #[must_use]
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// The shard holding `object`, and its index.
    fn shard_for(&self, object: &str) -> &Shard {
        &self.shards[self.control.shard_of(object)]
    }

    /// Checks a transaction without touching any replica. Shared by
    /// the single and batched execution paths so both reject malformed
    /// input before **any** mutation (all-or-nothing).
    fn validate_tx(tx: &Transaction) -> Result<()> {
        if tx.object.is_empty() {
            return Err(RadosError::InvalidArgument("empty object name".into()));
        }
        for op in &tx.ops {
            match op {
                TxOp::OmapSet(entries) => {
                    if entries.iter().any(|(k, _)| k.is_empty()) {
                        return Err(RadosError::InvalidArgument("empty omap key".into()));
                    }
                }
                TxOp::OmapRemove(keys) => {
                    if keys.iter().any(Vec::is_empty) {
                        return Err(RadosError::InvalidArgument("empty omap key".into()));
                    }
                }
                TxOp::Write { data, .. } => {
                    if data.is_empty() {
                        return Err(RadosError::InvalidArgument("empty write".into()));
                    }
                }
                TxOp::Truncate(_) | TxOp::SetXattr(..) | TxOp::Delete => {}
            }
        }
        Ok(())
    }

    /// Applies a transaction atomically on every replica and returns
    /// its cost plan.
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::InvalidArgument`] if any op is malformed;
    /// in that case **no** op has been applied (all-or-nothing).
    pub fn execute(&self, tx: Transaction) -> Result<Plan> {
        Self::validate_tx(&tx)?;
        let cp = &self.control;
        cp.stats.record_transactions(1);
        let default_seq = cp.snap_seq();
        let mut shard = self.shard_for(&tx.object).lock();
        Ok(shard.apply_tx(cp, default_seq, &tx))
    }

    /// Applies many transactions under one cluster round trip and
    /// returns [`Plan::par`] of their costs (in submission order): the
    /// dispatch stage of a vectored IO, where every object extent's
    /// transaction is in flight concurrently.
    ///
    /// Validation runs over the **whole batch** before any transaction
    /// is applied, extending the single-transaction all-or-nothing
    /// guarantee to the batch — a malformed transaction anywhere
    /// leaves every shard untouched. Transactions are then grouped by
    /// state shard and the groups apply **concurrently** (scoped
    /// threads, one per touched shard, gated by
    /// [`ClusterBuilder::concurrent_apply`]), so independent objects
    /// proceed in parallel in wall-clock, not just in the cost model.
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::InvalidArgument`] if any transaction in
    /// the batch is malformed; no transaction has been applied then.
    pub fn execute_batch(&self, txs: Vec<Transaction>) -> Result<Plan> {
        for tx in &txs {
            Self::validate_tx(tx)?;
        }
        let cp = &self.control;
        cp.stats.record_batch();
        cp.stats.record_transactions(txs.len() as u64);
        if txs.is_empty() {
            return Ok(Plan::Noop);
        }
        let default_seq = cp.snap_seq();

        let payload: u64 = txs.iter().map(Transaction::payload_bytes).sum();
        let shard_keys: Vec<usize> = txs.iter().map(|tx| cp.shard_of(&tx.object)).collect();
        let txs = &txs;
        let plans = self.fan_out(
            &shard_keys,
            cp.use_threads(txs.len(), payload),
            |shard, idxs| {
                Ok(idxs
                    .iter()
                    .map(|&i| (i, shard.apply_tx(cp, default_seq, &txs[i])))
                    .collect())
            },
        )?;
        Ok(Plan::par(plans))
    }

    /// The shared fan-out skeleton of the batched paths: group item
    /// indices by their shard key, serve each group under that shard's
    /// lock — inline, or on scoped threads (one per touched shard)
    /// when `use_threads` and more than one shard is touched — and
    /// reassemble the per-item results in submission order.
    ///
    /// `serve` receives the locked shard state and that shard's item
    /// indices and returns `(item_index, result)` pairs; an error from
    /// any group fails the whole call (after every group has
    /// finished). Locking and the concurrency-counter bracketing are
    /// done here, structurally: the counter is only ever incremented
    /// under a shard lock, which is what keeps
    /// `shard_concurrency_peak <= shard_count` a true invariant.
    fn fan_out<T, F>(&self, shard_keys: &[usize], use_threads: bool, serve: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&mut ShardState, &[usize]) -> Result<Vec<(usize, T)>> + Sync,
    {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, &shard) in shard_keys.iter().enumerate() {
            groups[shard].push(i);
        }
        let touched: Vec<(usize, Vec<usize>)> = groups
            .into_iter()
            .enumerate()
            .filter(|(_, idxs)| !idxs.is_empty())
            .collect();
        self.control.stats.record_shard_fanout(touched.len() as u64);

        let serve_locked = |shard: usize, idxs: &[usize]| {
            let mut guard = self.shards[shard].lock();
            self.control.stats.enter_shard_apply();
            let out = serve(&mut guard, idxs);
            self.control.stats.exit_shard_apply();
            out
        };

        let served: Vec<Result<Vec<(usize, T)>>> = if touched.len() == 1 || !use_threads {
            touched
                .iter()
                .map(|(shard, idxs)| serve_locked(*shard, idxs))
                .collect()
        } else {
            std::thread::scope(|s| {
                let workers: Vec<_> = touched
                    .iter()
                    .map(|(shard, idxs)| s.spawn(|| serve_locked(*shard, idxs)))
                    .collect();
                workers
                    .into_iter()
                    .map(|w| w.join().expect("shard worker panicked"))
                    .collect()
            })
        };

        let mut out: Vec<Option<T>> = (0..shard_keys.len()).map(|_| None).collect();
        for group in served {
            for (i, item) in group? {
                out[i] = Some(item);
            }
        }
        Ok(out
            .into_iter()
            .map(|t| t.expect("every item served"))
            .collect())
    }

    /// Operation counters since the cluster was built.
    #[must_use]
    pub fn exec_stats(&self) -> ExecStats {
        self.control.stats.snapshot()
    }

    /// Number of state shards batches fan out over.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Executes read operations against the primary replica.
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::NoSuchObject`] if the object does not
    /// exist, or [`RadosError::NoSuchSnapshot`] if it did not exist yet
    /// at the requested snapshot.
    pub fn read(
        &self,
        object: &str,
        snap: Option<SnapId>,
        ops: &[ReadOp],
    ) -> Result<(Vec<ReadResult>, Plan)> {
        let cp = &self.control;
        cp.stats.record_read_ops(1);
        let shard = self.shard_for(object).lock();
        shard.read_one(cp, object, snap, ops)
    }

    /// Serves many per-object read requests in one round trip: the
    /// read half of the vectored IO path, fanned out over the state
    /// shards like [`Cluster::execute_batch`]. Returns one result slot
    /// per request plus [`Plan::par`] of the per-request costs (in
    /// submission order). Objects absent (now, or at `snap`) yield
    /// `None` so striped callers can zero-fill sparse extents without
    /// failing the whole batch — but still cost a round trip to the
    /// primary, so the plan keeps **one child per request**.
    ///
    /// # Errors
    ///
    /// Propagates any error other than a missing object/snapshot.
    pub fn read_batch(
        &self,
        snap: Option<SnapId>,
        requests: &[ObjectReads],
    ) -> Result<(Vec<Option<Vec<ReadResult>>>, Plan)> {
        let cp = &self.control;
        cp.stats.record_read_ops(requests.len() as u64);
        if requests.is_empty() {
            return Ok((Vec::new(), Plan::Noop));
        }

        let requested: u64 = requests
            .iter()
            .flat_map(|r| &r.ops)
            .map(|op| match op {
                ReadOp::Read { len, .. } => *len,
                _ => 0,
            })
            .sum();
        let shard_keys: Vec<usize> = requests.iter().map(|r| cp.shard_of(&r.object)).collect();
        let served: Vec<(Option<Vec<ReadResult>>, Plan)> = self.fan_out(
            &shard_keys,
            cp.use_threads(requests.len(), requested),
            |shard, idxs| {
                idxs.iter()
                    .map(|&i| {
                        let request = &requests[i];
                        match shard.read_one(cp, &request.object, snap, &request.ops) {
                            Ok((res, plan)) => Ok((i, (Some(res), plan))),
                            Err(
                                RadosError::NoSuchObject(_) | RadosError::NoSuchSnapshot { .. },
                            ) => {
                                // A miss still costs a round trip.
                                Ok((i, (None, ShardState::miss_plan(cp, &request.object))))
                            }
                            Err(e) => Err(e),
                        }
                    })
                    .collect()
            },
        )?;

        let (results, plans): (Vec<_>, Vec<_>) = served.into_iter().unzip();
        Ok((results, Plan::par(plans)))
    }

    /// Takes a cluster-wide self-managed snapshot; subsequent writes
    /// copy-on-write any object they touch.
    pub fn create_snap(&self) -> SnapId {
        SnapId(self.control.advance_snap_seq())
    }

    /// The current snapshot sequence.
    #[must_use]
    pub fn snap_seq(&self) -> SnapId {
        SnapId(self.control.snap_seq())
    }

    /// Whether an object exists (on its primary).
    #[must_use]
    pub fn object_exists(&self, object: &str) -> bool {
        let primary = self.control.placement.primary(object);
        self.shard_for(object).lock().osds[primary.0].contains_key(object)
    }

    /// Object metadata from the primary.
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::NoSuchObject`] if the object is absent.
    pub fn stat(&self, object: &str) -> Result<crate::object::ObjectStat> {
        self.shard_for(object).lock().stat(&self.control, object)
    }

    /// All object names (sorted), from every OSD's primary view.
    #[must_use]
    pub fn list_objects(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for shard in self.shards.iter() {
            let guard = shard.lock();
            names.extend(guard.osds.iter().flat_map(|m| m.keys().cloned()));
        }
        names.sort_unstable();
        names.dedup();
        names
    }

    /// The installed resource handles (for plan construction by upper
    /// layers, e.g. client-side crypto cost).
    #[must_use]
    pub fn resources(&self) -> ResourceHandles {
        self.control.handles.clone()
    }

    /// The testbed profile in effect.
    #[must_use]
    pub fn testbed_profile(&self) -> TestbedProfile {
        self.control.testbed.clone()
    }

    /// Convenience: a plan occupying the client crypto workers for
    /// `bytes` of encryption/decryption work.
    #[must_use]
    pub fn crypto_plan(&self, bytes: u64) -> Plan {
        Plan::op(self.control.handles.client_crypto, bytes)
    }

    /// Runs pre-built plans in a closed loop (fio-style, fixed queue
    /// depth) against this cluster's simulated hardware.
    #[must_use]
    pub fn run_closed_loop(&self, queue_depth: usize, plans: Vec<(Plan, u64)>) -> ClosedLoopStats {
        let mut sim = self.sim.lock().unwrap_or_else(PoisonError::into_inner);
        let total = plans.len() as u64;
        let mut plans = plans.into_iter();
        sim.run_closed_loop(queue_depth, total, move |_| {
            plans.next().expect("plan count matches total_ops")
        })
    }

    /// Per-resource utilization of the last closed-loop run.
    #[must_use]
    pub fn utilization_report(&self) -> Vec<vdisk_sim::ResourceUsage> {
        self.sim
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .utilization_report()
    }

    /// Verifies that all replicas of all objects agree (like Ceph's
    /// deep scrub).
    #[must_use]
    pub fn scrub(&self) -> ScrubReport {
        let mut report = ScrubReport::default();
        for shard in self.shards.iter() {
            let guard = shard.lock();
            let mut names: Vec<String> =
                guard.osds.iter().flat_map(|m| m.keys().cloned()).collect();
            names.sort_unstable();
            names.dedup();
            for name in names {
                report.objects_checked += 1;
                let acting = self.control.placement.acting_set(&name);
                let prints: Vec<Option<u64>> = acting
                    .iter()
                    .map(|osd| guard.osds[osd.0].get(&name).map(|o| o.head.fingerprint()))
                    .collect();
                let first = &prints[0];
                if prints.iter().any(|p| p != first) {
                    report.divergent.push(name);
                }
            }
        }
        report.divergent.sort_unstable();
        report
    }

    /// Fault injection: silently corrupts one byte on a **non-primary**
    /// replica (as a failing disk or torn replication would). Scrub
    /// must detect it; [`Cluster::repair`] must fix it.
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::InvalidArgument`] if `replica_index` is 0
    /// (the primary) or out of range, or [`RadosError::NoSuchObject`]
    /// if that replica holds no such object.
    pub fn damage_replica(&self, object: &str, replica_index: usize, offset: usize) -> Result<()> {
        let acting = self.control.placement.acting_set(object);
        if replica_index == 0 || replica_index >= acting.len() {
            return Err(RadosError::InvalidArgument(format!(
                "replica_index {replica_index} out of range (1..{})",
                acting.len()
            )));
        }
        let osd = acting[replica_index];
        let mut shard = self.shard_for(object).lock();
        let obj = shard.osds[osd.0]
            .get_mut(object)
            .ok_or_else(|| RadosError::NoSuchObject(object.to_string()))?;
        obj.head.poke(offset, 0xFF);
        Ok(())
    }

    /// Repairs an object by re-replicating the primary's copy (Ceph's
    /// `pg repair` policy: the primary is authoritative).
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::NoSuchObject`] if the primary holds no
    /// such object.
    pub fn repair(&self, object: &str) -> Result<()> {
        let acting = self.control.placement.acting_set(object);
        let mut shard = self.shard_for(object).lock();
        let primary_copy = shard.osds[acting[0].0]
            .get(object)
            .cloned()
            .ok_or_else(|| RadosError::NoSuchObject(object.to_string()))?;
        for osd in &acting[1..] {
            shard.osds[osd.0].insert(object.to_string(), primary_copy.clone());
        }
        Ok(())
    }

    /// Test-only: whether a specific OSD holds a copy of `object`.
    #[cfg(test)]
    fn osd_holds(&self, osd: usize, object: &str) -> bool {
        self.shard_for(object).lock().osds[osd].contains_key(object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::builder().build()
    }

    #[test]
    fn write_then_read_round_trips() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(100, b"hello world".to_vec());
        c.execute(tx).unwrap();
        let (results, plan) = c
            .read(
                "obj",
                None,
                &[ReadOp::Read {
                    offset: 100,
                    len: 11,
                }],
            )
            .unwrap();
        assert_eq!(results[0].as_data(), b"hello world");
        assert!(plan.op_count() > 0);
    }

    #[test]
    fn reads_of_missing_objects_fail() {
        let c = cluster();
        assert_eq!(
            c.read("ghost", None, &[ReadOp::Stat]).unwrap_err(),
            RadosError::NoSuchObject("ghost".into())
        );
    }

    #[test]
    fn transaction_is_atomic_on_validation_failure() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, b"data".to_vec());
        tx.omap_set(vec![(Vec::new(), b"bad-key".to_vec())]); // invalid
        assert!(matches!(c.execute(tx), Err(RadosError::InvalidArgument(_))));
        assert!(
            !c.object_exists("obj"),
            "no partial state may survive a rejected transaction"
        );
    }

    #[test]
    fn omap_set_and_range() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![1]);
        tx.omap_set(vec![
            (b"iv.0001".to_vec(), vec![0x11; 16]),
            (b"iv.0000".to_vec(), vec![0x22; 16]),
        ]);
        c.execute(tx).unwrap();
        let (results, _) = c
            .read(
                "obj",
                None,
                &[ReadOp::OmapGetRange {
                    start: b"iv.".to_vec(),
                    end: b"iv.\xff".to_vec(),
                }],
            )
            .unwrap();
        let entries = results[0].as_omap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, b"iv.0000");
    }

    #[test]
    fn snapshots_preserve_history() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, b"v1".to_vec());
        c.execute(tx).unwrap();
        let snap1 = c.create_snap();
        let mut tx = Transaction::new("obj");
        tx.write(0, b"v2".to_vec());
        c.execute(tx).unwrap();

        let (head, _) = c
            .read("obj", None, &[ReadOp::Read { offset: 0, len: 2 }])
            .unwrap();
        let (old, _) = c
            .read("obj", Some(snap1), &[ReadOp::Read { offset: 0, len: 2 }])
            .unwrap();
        assert_eq!(head[0].as_data(), b"v2");
        assert_eq!(old[0].as_data(), b"v1");
    }

    #[test]
    fn snapshot_before_birth_is_absent() {
        let c = cluster();
        let snap = c.create_snap();
        let mut tx = Transaction::new("newborn");
        tx.write(0, b"x".to_vec());
        c.execute(tx).unwrap();
        assert!(matches!(
            c.read("newborn", Some(snap), &[ReadOp::Stat]),
            Err(RadosError::NoSuchSnapshot { .. })
        ));
    }

    #[test]
    fn omap_survives_snapshots_with_cow() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![1]);
        tx.omap_set(vec![(b"k".to_vec(), b"old".to_vec())]);
        c.execute(tx).unwrap();
        let snap = c.create_snap();
        let mut tx = Transaction::new("obj");
        tx.omap_set(vec![(b"k".to_vec(), b"new".to_vec())]);
        c.execute(tx).unwrap();

        let (head, _) = c
            .read("obj", None, &[ReadOp::OmapGetKeys(vec![b"k".to_vec()])])
            .unwrap();
        let (old, _) = c
            .read(
                "obj",
                Some(snap),
                &[ReadOp::OmapGetKeys(vec![b"k".to_vec()])],
            )
            .unwrap();
        assert_eq!(head[0].as_omap()[0].1, b"new");
        assert_eq!(old[0].as_omap()[0].1, b"old", "OMAP must be COW'd too");
    }

    #[test]
    fn scrub_detects_and_repair_fixes_divergence() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![0xAB; 1024]);
        c.execute(tx).unwrap();
        assert!(c.scrub().is_clean());

        c.damage_replica("obj", 1, 10).unwrap();
        let report = c.scrub();
        assert_eq!(report.divergent, vec!["obj".to_string()]);

        c.repair("obj").unwrap();
        assert!(c.scrub().is_clean());
    }

    #[test]
    fn damage_primary_is_rejected() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![1]);
        c.execute(tx).unwrap();
        assert!(c.damage_replica("obj", 0, 0).is_err());
        assert!(c.damage_replica("obj", 9, 0).is_err());
    }

    #[test]
    fn delete_removes_everywhere() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![1]);
        c.execute(tx).unwrap();
        assert!(c.object_exists("obj"));
        let mut tx = Transaction::new("obj");
        tx.delete();
        c.execute(tx).unwrap();
        assert!(!c.object_exists("obj"));
        assert_eq!(c.list_objects().len(), 0);
    }

    #[test]
    fn xattrs_round_trip() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![0]);
        tx.set_xattr("rbd.size", 4096u64.to_le_bytes().to_vec());
        c.execute(tx).unwrap();
        let (results, _) = c
            .read("obj", None, &[ReadOp::GetXattr("rbd.size".into())])
            .unwrap();
        assert_eq!(
            results[0],
            ReadResult::Xattr(Some(4096u64.to_le_bytes().to_vec()))
        );
        let (results, _) = c
            .read("obj", None, &[ReadOp::GetXattr("missing".into())])
            .unwrap();
        assert_eq!(results[0], ReadResult::Xattr(None));
    }

    #[test]
    fn discarded_payload_mode_keeps_sizes() {
        let c = Cluster::builder()
            .payload_mode(PayloadMode::Discarded)
            .build();
        let mut tx = Transaction::new("obj");
        tx.write(4096, vec![7; 4096]);
        c.execute(tx).unwrap();
        assert_eq!(c.stat("obj").unwrap().size, 8192);
        let (results, _) = c
            .read(
                "obj",
                None,
                &[ReadOp::Read {
                    offset: 4096,
                    len: 4096,
                }],
            )
            .unwrap();
        assert_eq!(results[0].as_data(), &vec![0u8; 4096][..], "payload gone");
    }

    #[test]
    fn closed_loop_runs_plans() {
        let c = cluster();
        let mut plans = Vec::new();
        for i in 0..64 {
            let mut tx = Transaction::new(format!("obj{i}"));
            tx.write(0, vec![0u8; 4096]);
            plans.push((c.execute(tx).unwrap(), 4096));
        }
        let stats = c.run_closed_loop(8, plans);
        assert_eq!(stats.ops, 64);
        assert!(stats.bandwidth_mb_s() > 0.0);
        let report = c.utilization_report();
        assert!(report.iter().any(|r| r.ops > 0));
    }

    #[test]
    fn replicas_actually_hold_copies() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, b"replicated".to_vec());
        c.execute(tx).unwrap();
        // All three OSDs hold the object (3-way replication on 3 OSDs).
        for osd in 0..3 {
            assert!(c.osd_holds(osd, "obj"), "osd {osd} missing the object");
        }
    }

    #[test]
    fn execute_batch_applies_all_and_fans_out() {
        let c = cluster();
        let txs: Vec<Transaction> = (0..4)
            .map(|i| {
                let mut tx = Transaction::new(format!("obj{i}"));
                tx.write(0, vec![i as u8; 4096]);
                tx
            })
            .collect();
        let plan = c.execute_batch(txs).unwrap();
        match &plan {
            Plan::Par(children) => assert_eq!(children.len(), 4),
            other => panic!("batch dispatch must be parallel, got {other:?}"),
        }
        for i in 0..4 {
            assert!(c.object_exists(&format!("obj{i}")));
        }
        let stats = c.exec_stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.transactions, 4);
        assert!(
            stats.shard_fanout_max >= 1,
            "fanout counter must have recorded the batch"
        );
    }

    #[test]
    fn multi_shard_batch_records_fanout() {
        // Force the threaded path so it is exercised on any host.
        let c = Cluster::builder().concurrent_apply(true).build();
        // Enough distinct objects that, with 8 shards over 128 PGs,
        // at least two shards are touched (deterministic placement).
        let txs: Vec<Transaction> = (0..16)
            .map(|i| {
                let mut tx = Transaction::new(format!("spread{i}"));
                tx.write(0, vec![1u8; 512]);
                tx
            })
            .collect();
        c.execute_batch(txs).unwrap();
        let stats = c.exec_stats();
        assert!(
            stats.shard_fanout_max >= 2,
            "16 distinct objects must fan out over >= 2 shards, got {}",
            stats.shard_fanout_max
        );
        assert!(stats.shard_concurrency_peak >= 1);
        assert!(stats.shard_concurrency_peak <= c.shard_count() as u64);
    }

    #[test]
    fn single_shard_cluster_still_serves_batches() {
        let c = Cluster::builder().shard_count(1).build();
        let txs: Vec<Transaction> = (0..4)
            .map(|i| {
                let mut tx = Transaction::new(format!("obj{i}"));
                tx.write(0, vec![i as u8; 1024]);
                tx
            })
            .collect();
        let plan = c.execute_batch(txs).unwrap();
        assert!(matches!(&plan, Plan::Par(children) if children.len() == 4));
        assert_eq!(c.exec_stats().shard_fanout_max, 1);
        for i in 0..4 {
            assert!(c.object_exists(&format!("obj{i}")));
        }
    }

    #[test]
    fn execute_batch_is_all_or_nothing_across_transactions() {
        let c = cluster();
        let mut good = Transaction::new("good");
        good.write(0, vec![1; 16]);
        let mut bad = Transaction::new("bad");
        bad.write(0, Vec::new()); // invalid: empty write
        assert!(matches!(
            c.execute_batch(vec![good, bad]),
            Err(RadosError::InvalidArgument(_))
        ));
        assert!(
            !c.object_exists("good"),
            "a bad transaction must reject the whole batch before any applies"
        );
        assert_eq!(c.exec_stats().transactions, 0);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let c = cluster();
        assert_eq!(c.execute_batch(Vec::new()).unwrap(), Plan::Noop);
    }

    #[test]
    fn read_batch_zero_fills_missing_objects() {
        let c = cluster();
        let mut tx = Transaction::new("present");
        tx.write(0, b"here".to_vec());
        c.execute(tx).unwrap();
        let (results, plan) = c
            .read_batch(
                None,
                &[
                    ObjectReads::new("present", vec![ReadOp::Read { offset: 0, len: 4 }]),
                    ObjectReads::new("ghost", vec![ReadOp::Read { offset: 0, len: 4 }]),
                ],
            )
            .unwrap();
        assert_eq!(results[0].as_ref().unwrap()[0].as_data(), b"here");
        assert!(results[1].is_none(), "missing object reads as a hole");
        assert!(plan.op_count() > 0);
        assert_eq!(c.exec_stats().read_ops, 2);
    }

    #[test]
    fn read_batch_charges_a_round_trip_per_miss() {
        let c = cluster();
        let mut tx = Transaction::new("present");
        tx.write(0, vec![1u8; 4096]);
        c.execute(tx).unwrap();
        let (_, plan) = c
            .read_batch(
                None,
                &[
                    ObjectReads::new(
                        "present",
                        vec![ReadOp::Read {
                            offset: 0,
                            len: 4096,
                        }],
                    ),
                    ObjectReads::new(
                        "ghost-a",
                        vec![ReadOp::Read {
                            offset: 0,
                            len: 4096,
                        }],
                    ),
                    ObjectReads::new("ghost-b", vec![ReadOp::Stat]),
                ],
            )
            .unwrap();
        // One plan child per request, misses included.
        match &plan {
            Plan::Par(children) => {
                assert_eq!(children.len(), 3, "sparse misses must keep their cost slot")
            }
            other => panic!("expected parallel dispatch, got {other:?}"),
        }
        // The miss children still move request/response headers but no
        // disk bytes: total op bytes exceed a lone present read's.
        let (_, lone) = c
            .read_batch(
                None,
                &[ObjectReads::new(
                    "present",
                    vec![ReadOp::Read {
                        offset: 0,
                        len: 4096,
                    }],
                )],
            )
            .unwrap();
        assert!(plan.total_op_bytes() > lone.total_op_bytes());
        // And a miss costs no disk op on any OSD.
        let handles = c.resources();
        let (_, miss_only) = c
            .read_batch(None, &[ObjectReads::new("ghost-c", vec![ReadOp::Stat])])
            .unwrap();
        for disk in &handles.osd_disk {
            assert_eq!(
                miss_only.op_count_on(*disk),
                0,
                "a miss must not touch disk"
            );
        }
        assert!(miss_only.op_count() > 0, "a miss still makes a round trip");
    }

    #[test]
    fn zero_length_read_extent_charges_no_disk_block() {
        let c = cluster();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![7u8; 4096]);
        c.execute(tx).unwrap();
        let handles = c.resources();
        let (results, plan) = c
            .read("obj", None, &[ReadOp::Read { offset: 0, len: 0 }])
            .unwrap();
        assert!(results[0].as_data().is_empty());
        for disk in &handles.osd_disk {
            assert_eq!(
                plan.op_count_on(*disk),
                0,
                "an empty extent must not be charged a whole block"
            );
        }
    }

    #[test]
    fn batched_and_single_execution_leave_identical_state() {
        let build = |batched: bool| {
            let c = cluster();
            let txs: Vec<Transaction> = (0..3)
                .map(|i| {
                    let mut tx = Transaction::new(format!("obj{i}"));
                    tx.write(i * 512, vec![0xC0 + i as u8; 2048]);
                    tx.omap_set(vec![(vec![i as u8 + 1], vec![0xEE; 16])]);
                    tx
                })
                .collect();
            if batched {
                c.execute_batch(txs).unwrap();
            } else {
                for tx in txs {
                    c.execute(tx).unwrap();
                }
            }
            c
        };
        let (single, batched) = (build(false), build(true));
        for i in 0..3 {
            let name = format!("obj{i}");
            let ops = [
                ReadOp::Read {
                    offset: 0,
                    len: 4096,
                },
                ReadOp::OmapGetRange {
                    start: vec![],
                    end: vec![0xFF],
                },
            ];
            let (a, _) = single.read(&name, None, &ops).unwrap();
            let (b, _) = batched.read(&name, None, &ops).unwrap();
            assert_eq!(a, b, "object {name} diverged between paths");
        }
    }

    #[test]
    fn snap_ids_are_monotonic() {
        let c = cluster();
        let a = c.create_snap();
        let b = c.create_snap();
        assert!(b > a);
        assert_eq!(c.snap_seq(), b);
    }
}
