//! A Ceph-RADOS-like replicated object store, functionally real and
//! temporally simulated.
//!
//! The paper modifies Ceph RBD's client-side encryption; every feature
//! its design leans on is implemented here:
//!
//! - **Objects** ([`object`]): byte-addressable sparse data (backed by
//!   4 KB physical blocks with read-modify-write on unaligned writes),
//!   per-object **OMAP** key-value metadata (a real mini-LSM from
//!   `vdisk-kv`, Ceph's RocksDB analog), and xattrs.
//! - **Placement** ([`placement`]): a deterministic CRUSH-like mapping
//!   of objects to a primary + replica set.
//! - **Transactions** ([`transaction`]): multi-op writes to one object
//!   applied atomically — the mechanism the paper uses to keep data and
//!   per-sector IVs consistent (sections 2.4 and 3.1).
//! - **Snapshots**: RADOS self-managed snapshots with per-object
//!   copy-on-write clones, so "overwritten data remains accessible"
//!   (§1) exactly as in the paper's threat model.
//! - **Submission queues** ([`Cluster::submit_batch`] /
//!   [`Cluster::submit_read_batch`]): per-shard FIFO work queues served
//!   by one worker thread per shard; submissions return tickets
//!   immediately so a client keeps many IOs in flight, with ops from
//!   different submissions interleaving on the shard workers while
//!   same-object ops keep submission order.
//! - **Replication**: writes go to the primary and fan out to replicas;
//!   scrub/repair utilities detect and fix divergence.
//! - **Cost model** ([`cost`]): every operation compiles to a
//!   [`vdisk_sim::Plan`] over the testbed's resources (client NIC,
//!   per-OSD links, OSD CPUs, NVMe arrays, the OMAP KV engine),
//!   calibrated to §3.2's hardware.
//!
//! # Example
//!
//! ```
//! use vdisk_rados::{Cluster, ReadOp, Transaction};
//!
//! # fn main() -> Result<(), vdisk_rados::RadosError> {
//! let cluster = Cluster::builder().build();
//! let mut tx = Transaction::new("greeting");
//! tx.write(0, b"hello".to_vec());
//! tx.omap_set(vec![(b"lang".to_vec(), b"en".to_vec())]);
//! cluster.execute(tx)?;
//!
//! let (results, _plan) = cluster.read(
//!     "greeting",
//!     None,
//!     &[ReadOp::Read { offset: 0, len: 5 }],
//! )?;
//! assert_eq!(results[0].as_data(), b"hello");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
pub mod cluster;
pub mod cost;
pub mod fault;
pub mod object;
pub mod placement;
mod queue;
mod shard;
mod state;
pub mod transaction;

pub use backend::BackendKind;
pub use cluster::{
    Cluster, ClusterBuilder, ExecStats, PayloadMode, ScrubReport, DEFAULT_META_CACHE_BYTES,
};
pub use cost::{ResourceHandles, TestbedProfile};
pub use fault::{FaultConfig, FaultKind, FaultPlane, RetryPolicy};
pub use object::{ObjectStat, PHYS_BLOCK};
pub use placement::{OsdId, PlacementMap};
pub use queue::{ApplyTicket, Doorbell, ReadTicket, ShardHold};
pub use transaction::{ObjectReads, ReadOp, ReadResult, SharedBuf, SnapContext, Transaction, TxOp};

use std::error::Error as StdError;
use std::fmt;

/// A RADOS self-managed snapshot id. Snapshot ids increase
/// monotonically; `SnapId(0)` means "no snapshot yet".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SnapId(pub u64);

impl fmt::Display for SnapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snap{}", self.0)
    }
}

/// Errors surfaced by the object store.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RadosError {
    /// The object does not exist (reads of absent objects).
    NoSuchObject(String),
    /// The object does not exist at the requested snapshot.
    NoSuchSnapshot {
        /// Object name.
        object: String,
        /// The snapshot that was requested.
        snap: SnapId,
    },
    /// A malformed operation (e.g. zero-length write, bad range).
    InvalidArgument(String),
    /// A [`TxOp::CompareXattr`] precondition did not hold: the object's
    /// current state differs from what the writer read. Nothing of the
    /// transaction has been applied; re-read and retry.
    CompareFailed {
        /// Object name.
        object: String,
        /// The xattr whose value diverged.
        xattr: String,
    },
    /// Scrub found replicas that disagree.
    ReplicaDivergence {
        /// Object name.
        object: String,
    },
    /// The cluster configuration is unbuildable: a knob is out of
    /// range, or a durable directory was formatted with a different
    /// geometry. Returned by [`ClusterBuilder::try_build`].
    InvalidConfig(String),
    /// A durable backend failed at the host-IO layer (create, write,
    /// fsync, rename, or decode of an on-disk object). Carries the
    /// rendered `std::io::Error`, kept as a string so the variant stays
    /// `Clone`/`Eq` like the rest of the enum.
    Io(String),
    /// An injected fault from the cluster's [`fault::FaultPlane`]
    /// surfaced to the client: a transient fault that exhausted the
    /// [`fault::RetryPolicy`] budget, a persistent fault (never
    /// retried), or an injected crash. Never produced on clusters
    /// built without a fault plane.
    Injected {
        /// The class of the injected fault.
        kind: fault::FaultKind,
        /// The state shard the faulted operation targeted.
        shard: usize,
    },
}

impl fmt::Display for RadosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RadosError::NoSuchObject(name) => write!(f, "no such object: {name}"),
            RadosError::NoSuchSnapshot { object, snap } => {
                write!(f, "object {object} has no data at {snap}")
            }
            RadosError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            RadosError::CompareFailed { object, xattr } => {
                write!(
                    f,
                    "compare failed on {object} xattr {xattr}: concurrent update"
                )
            }
            RadosError::ReplicaDivergence { object } => {
                write!(f, "replica divergence detected on object {object}")
            }
            RadosError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RadosError::Io(msg) => write!(f, "io error: {msg}"),
            RadosError::Injected { kind, shard } => {
                write!(f, "injected {kind} fault on shard {shard}")
            }
        }
    }
}

impl RadosError {
    /// Whether replaying the failed submission may succeed. Only
    /// injected **transient** faults qualify: they are injected before
    /// the attempt touches any state, so a replay is idempotent.
    /// Everything else either already decided (`CompareFailed`,
    /// `NoSuchObject`, …) or cannot be replayed safely (host-IO errors
    /// may have partially applied).
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            RadosError::Injected {
                kind: fault::FaultKind::Transient,
                ..
            }
        )
    }
}

impl StdError for RadosError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RadosError>;
