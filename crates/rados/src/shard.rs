//! One shard of cluster state: the per-OSD object maps for every
//! object whose placement group lands in this shard, behind its own
//! lock.
//!
//! An object's whole acting set (primary and replicas) lives in one
//! shard — placement is a pure function of the object name, so the
//! shard key is too. That makes per-object transactions and reads
//! single-shard operations, and lets [`crate::Cluster::execute_batch`]
//! apply disjoint shard groups genuinely concurrently.

use crate::backend::ObjectStore;
use crate::cost::{self, OsdWork};
use crate::object::{Object, ObjectStat, PHYS_BLOCK};
use crate::state::ControlPlane;
use crate::state::StatCounters;
use crate::transaction::{ReadOp, ReadResult, SnapContext, Transaction, TxOp};
use crate::{RadosError, Result, SnapId};
use std::sync::{Mutex, MutexGuard, PoisonError};
use vdisk_sim::{Plan, SimDuration};

/// A shard: one lock over one placement-disjoint slice of the object
/// space, plus its work-queue admission counter.
pub(crate) struct Shard {
    state: Mutex<ShardState>,
    /// Jobs admitted to this shard (enqueued or applying) and not yet
    /// complete. The 0↔1 transitions drive the cluster-wide
    /// shard-concurrency high-water mark; the global update happens
    /// *under this lock* so one shard's enter/exit strictly alternate
    /// — which is what makes `shard_concurrency_peak <= shard_count` a
    /// structural invariant rather than a race-prone approximation.
    pending: Mutex<usize>,
}

impl Shard {
    pub(crate) fn new(store: Box<dyn ObjectStore>) -> Self {
        Shard {
            state: Mutex::new(ShardState { store }),
            pending: Mutex::new(0),
        }
    }

    /// Acquires the shard; a panic while holding the lock only poisons
    /// functional state, so recover rather than propagate.
    pub(crate) fn lock(&self) -> MutexGuard<'_, ShardState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records a job admitted to this shard, bumping the cluster-wide
    /// busy-shard counter on the idle→busy transition. Returns whether
    /// the shard was idle (no enqueued or running job) — the
    /// linearization point for the sync wrappers' inline fast path.
    pub(crate) fn job_admitted(&self, stats: &StatCounters) -> bool {
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        *pending += 1;
        let was_idle = *pending == 1;
        if was_idle {
            stats.enter_shard_apply();
        }
        was_idle
    }

    /// Records a job finished on this shard, dropping the busy-shard
    /// counter on the busy→idle transition.
    pub(crate) fn job_done(&self, stats: &StatCounters) {
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        *pending -= 1;
        if *pending == 0 {
            stats.exit_shard_apply();
        }
    }
}

/// The objects of one shard, kept per OSD behind the backend seam (a
/// shard is a restriction of the old global maps to this shard's
/// placement groups; which medium holds the objects is the store's
/// business — see [`crate::backend`]).
pub(crate) struct ShardState {
    /// This shard's object storage, selected at cluster build time.
    pub(crate) store: Box<dyn ObjectStore>,
}

impl ShardState {
    /// Applies one already-validated transaction on every replica and
    /// builds its cost plan. `default_seq` is the snapshot sequence
    /// captured once at batch entry, so every transaction of a batch
    /// sees one consistent snapshot context.
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::CompareFailed`] if a
    /// [`TxOp::CompareXattr`] precondition does not hold; the check
    /// runs against the primary **before** any replica mutates, so a
    /// failed transaction leaves no trace (single-object
    /// all-or-nothing extends to dynamic preconditions).
    pub(crate) fn apply_tx(
        &mut self,
        cp: &ControlPlane,
        default_seq: u64,
        tx: &Transaction,
    ) -> Result<Plan> {
        let snapc = tx.snapc.unwrap_or(SnapContext {
            seq: SnapId(default_seq),
        });
        let acting = cp.placement.acting_set(&tx.object);
        let payload = tx.payload_bytes();

        // Evaluate every precondition before any mutation — replicas
        // are identical, so the primary's view decides.
        for op in &tx.ops {
            if let TxOp::CompareXattr { name, expected } = op {
                let actual = self
                    .store
                    // vdisk-lint: allow(hot-path-index) reason="acting_set always places at least the primary; an empty acting set is unconstructible"
                    .get(acting[0].0, &tx.object)
                    .and_then(|o| o.head.xattrs.get(name));
                if actual != expected.as_ref() {
                    return Err(RadosError::CompareFailed {
                        object: tx.object.clone(),
                        xattr: name.clone(),
                    });
                }
            }
        }

        let deferred_threshold = cp.testbed.deferred_write_threshold;
        let mut work: Vec<OsdWork> = Vec::with_capacity(acting.len());
        for osd in &acting {
            let store_payload = cp.payload == crate::cluster::PayloadMode::Stored;
            let object = self.store.entry(osd.0, &tx.object, store_payload, snapc);
            object.prepare_write(snapc);

            let mut osd_work = OsdWork::default();
            let mut kv_time = SimDuration::ZERO;
            let mut deleted = false;
            for op in &tx.ops {
                match op {
                    TxOp::Write { offset, data } => {
                        let profile = object.head.write(*offset, data);
                        if data.len() as u64 <= deferred_threshold {
                            // Small overwrite: the deferred/journal path
                            // absorbs it without a foreground RMW.
                            osd_work.deferred_writes.push(profile.write_bytes);
                        } else {
                            osd_work.rmw_reads.0 += profile.rmw_read_ops;
                            osd_work.rmw_reads.1 += profile.rmw_read_bytes;
                            osd_work.disk_writes.push(profile.write_bytes);
                        }
                    }
                    TxOp::Truncate(size) => {
                        object.head.truncate(*size);
                    }
                    TxOp::OmapSet(entries) => {
                        let batch: Vec<(Vec<u8>, Option<Vec<u8>>)> = entries
                            .iter()
                            .map(|(k, v)| (k.clone(), Some(v.clone())))
                            .collect();
                        let receipt = object.head.omap.write_batch(batch);
                        kv_time += cp.kv_cost.write_time(&receipt);
                        osd_work.kv_wal_bytes += receipt.wal_bytes;
                    }
                    TxOp::OmapRemove(keys) => {
                        let batch: Vec<(Vec<u8>, Option<Vec<u8>>)> =
                            keys.iter().map(|k| (k.clone(), None)).collect();
                        let receipt = object.head.omap.write_batch(batch);
                        kv_time += cp.kv_cost.write_time(&receipt);
                        osd_work.kv_wal_bytes += receipt.wal_bytes;
                    }
                    TxOp::SetXattr(name, value) => {
                        object.head.xattrs.insert(name.clone(), value.clone());
                    }
                    // Checked above, before any mutation.
                    TxOp::CompareXattr { .. } => {}
                    TxOp::Delete => {
                        deleted = true;
                    }
                }
            }
            osd_work.kv_time = kv_time;
            if deleted {
                self.store.remove(osd.0, &tx.object);
            }
            work.push(osd_work);
        }
        // The durability point: a durable backend fsyncs the object on
        // every acting OSD before the transaction is acknowledged; the
        // in-memory backend acknowledges immediately.
        self.store.commit(&tx.object, &acting)?;

        Ok(cost::write_plan(
            &cp.handles,
            &cp.testbed,
            payload,
            &acting,
            &work,
        ))
    }

    /// Serves one object's read operations from the primary replica.
    ///
    /// # Errors
    ///
    /// Returns [`RadosError::NoSuchObject`] if the object does not
    /// exist, or [`RadosError::NoSuchSnapshot`] if it did not exist yet
    /// at the requested snapshot.
    pub(crate) fn read_one(
        &self,
        cp: &ControlPlane,
        object: &str,
        snap: Option<SnapId>,
        ops: &[ReadOp],
    ) -> Result<(Vec<ReadResult>, Plan)> {
        let primary = cp.placement.primary(object);
        let obj = self
            .store
            .get(primary.0, object)
            .ok_or_else(|| RadosError::NoSuchObject(object.to_string()))?;
        let content = obj
            .content_at(snap)
            .ok_or_else(|| RadosError::NoSuchSnapshot {
                object: object.to_string(),
                snap: snap.unwrap_or_default(),
            })?;

        let mut results = Vec::with_capacity(ops.len());
        let mut work = OsdWork::default();
        let mut response_bytes = 0u64;
        for op in ops {
            match op {
                ReadOp::Read { offset, len } => {
                    let data = content.read(*offset, *len);
                    // Physical read: whole blocks covering the extent.
                    // A zero-length extent touches no block at all.
                    if *len > 0 {
                        let start_block = offset / PHYS_BLOCK;
                        let end_block = (offset + len).div_ceil(PHYS_BLOCK);
                        work.disk_reads.push((end_block - start_block) * PHYS_BLOCK);
                    }
                    response_bytes += *len;
                    results.push(ReadResult::Data(data));
                }
                ReadOp::OmapGetRange { start, end } => {
                    let (entries, receipt) = content.omap.range(start, end);
                    work.kv_time += cp.kv_cost.read_time(&receipt);
                    response_bytes += receipt.bytes_returned;
                    results.push(ReadResult::OmapEntries(entries));
                }
                ReadOp::OmapGetKeys(keys) => {
                    let mut entries = Vec::new();
                    for key in keys {
                        let (value, receipt) = content.omap.get(key);
                        work.kv_time += cp.kv_cost.read_time(&receipt);
                        if let Some(value) = value {
                            response_bytes += (key.len() + value.len()) as u64;
                            entries.push((key.clone(), value));
                        }
                    }
                    results.push(ReadResult::OmapEntries(entries));
                }
                ReadOp::GetXattr(name) => {
                    let value = content.xattrs.get(name).cloned();
                    response_bytes += value.as_ref().map_or(0, Vec::len) as u64;
                    results.push(ReadResult::Xattr(value));
                }
                ReadOp::Stat => {
                    results.push(ReadResult::Stat {
                        size: content.size(),
                    });
                }
            }
        }
        let plan = cost::read_plan(&cp.handles, &cp.testbed, primary, response_bytes, &work);
        Ok((results, plan))
    }

    /// The cost of discovering an object is absent: the request still
    /// makes the round trip to the primary and through its CPU — only
    /// the disk stays idle. Sparse batched reads charge one of these
    /// per hole so [`crate::Cluster::read_batch`]'s `Plan::par` keeps
    /// one child per request.
    pub(crate) fn miss_plan(cp: &ControlPlane, object: &str) -> Plan {
        let primary = cp.placement.primary(object);
        cost::read_plan(&cp.handles, &cp.testbed, primary, 0, &OsdWork::default())
    }

    /// Object metadata from the primary.
    pub(crate) fn stat(&self, cp: &ControlPlane, object: &str) -> Result<ObjectStat> {
        let primary = cp.placement.primary(object);
        self.store
            .get(primary.0, object)
            .map(Object::stat)
            .ok_or_else(|| RadosError::NoSuchObject(object.to_string()))
    }
}
