//! Per-shard work queues: the asynchronous dispatch engine behind
//! [`crate::Cluster::submit_batch`] / [`crate::Cluster::submit_read_batch`].
//!
//! Every shard owns one FIFO job queue served by one dedicated worker
//! thread (when workers are enabled — see
//! [`crate::ClusterBuilder::concurrent_apply`]). A submission validates
//! up front, splits into per-shard jobs, and enqueues them all before
//! returning a ticket; the caller overlaps further submissions with the
//! apply and reaps completions via [`ApplyTicket::wait`] /
//! [`ReadTicket::wait`].
//!
//! **Ordering rule** (the fence/sequence contract of the queue API):
//! one queue per shard, one consumer per shard, FIFO. An object maps to
//! exactly one shard, so two operations on overlapping extents — which
//! necessarily touch the same objects — are applied in submission
//! order, even when their submissions were concurrent in flight.
//! Operations on disjoint shards interleave freely; that is the
//! cross-batch concurrency the paper's queue-depth argument needs.

use crate::shard::{Shard, ShardState};
use crate::state::ControlPlane;
use crate::transaction::{ObjectReads, ReadResult, Transaction};
use crate::{RadosError, SnapId};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use vdisk_sim::Plan;

/// One per-shard unit of work: the indices of a submission's items
/// that landed on this shard.
pub(crate) enum Job {
    /// Apply transactions `idxs` of `shared`.
    Apply {
        shared: Arc<ApplyShared>,
        idxs: Vec<usize>,
    },
    /// Serve read requests `idxs` of `shared`.
    Read {
        shared: Arc<ReadShared>,
        idxs: Vec<usize>,
    },
    /// A barrier marker (see `Cluster::flush`): completes slot `slot`
    /// of `shared` once every job enqueued before it on this shard has
    /// been applied.
    Flush {
        shared: Arc<Progress<()>>,
        slot: usize,
    },
    /// A deliberate stall (see `Cluster::hold_shard`): the worker parks
    /// on the gate until the corresponding [`ShardHold`] is released.
    /// Like `Flush`, it carries no work and stays invisible to the
    /// admission/concurrency counters.
    Hold { gate: Arc<Progress<()>> },
}

/// A FIFO job queue with blocking pop — one per shard.
pub(crate) struct ShardQueue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl ShardQueue {
    pub(crate) fn new() -> Self {
        ShardQueue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn push(&self, job: Job) {
        self.lock().jobs.push_back(job);
        self.cv.notify_one();
    }

    /// Blocks for the next job; `None` once closed **and** drained, so
    /// in-flight work always completes before a worker exits.
    pub(crate) fn pop(&self) -> Option<Job> {
        let mut guard = self.lock();
        loop {
            if let Some(job) = guard.jobs.pop_front() {
                return Some(job);
            }
            if guard.closed {
                return None;
            }
            guard = self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }
}

/// The worker threads (one per shard) and their queues. Held by every
/// [`crate::Cluster`] clone via `Arc`; when the last handle drops, the
/// queues close and the workers drain and exit.
pub(crate) struct WorkerRuntime {
    /// `None` in inline mode (single-core hosts or an explicit
    /// opt-out): submissions apply synchronously at submit time.
    queues: Option<Arc<Vec<ShardQueue>>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerRuntime {
    /// Inline mode: no threads, submissions apply at submit.
    pub(crate) fn inline() -> Self {
        WorkerRuntime {
            queues: None,
            handles: Vec::new(),
        }
    }

    /// Spawns one worker per shard.
    pub(crate) fn spawn(cp: &Arc<ControlPlane>, shards: &Arc<[Shard]>) -> Self {
        let queues: Arc<Vec<ShardQueue>> =
            Arc::new((0..shards.len()).map(|_| ShardQueue::new()).collect());
        let handles = (0..shards.len())
            .map(|i| {
                let queues = Arc::clone(&queues);
                let cp = Arc::clone(cp);
                let shards = Arc::clone(shards);
                std::thread::spawn(move || {
                    // vdisk-lint: allow(hot-path-index) reason="one queue per shard; i ranges over 0..shards.len() which sized the vec"
                    while let Some(job) = queues[i].pop() {
                        run_job(&cp, &shards, i, job);
                    }
                })
            })
            .collect();
        WorkerRuntime {
            queues: Some(queues),
            handles,
        }
    }

    /// The shard queues, or `None` in inline mode.
    pub(crate) fn queues(&self) -> Option<&[ShardQueue]> {
        self.queues.as_deref().map(Vec::as_slice)
    }
}

impl Drop for WorkerRuntime {
    fn drop(&mut self) {
        if let Some(queues) = &self.queues {
            for queue in queues.iter() {
                queue.close();
            }
        }
        for handle in self.handles.drain(..) {
            // A worker that panicked has already poisoned its ticket;
            // nothing useful to propagate here.
            let _ = handle.join();
        }
    }
}

/// Executes one job against its shard — the body of a worker thread,
/// also called directly by the inline path. Bracketing of the
/// per-shard pending counter (entered at enqueue time by the
/// submitter) is *exited* here, after the shard's work completes.
pub(crate) fn run_job(cp: &ControlPlane, shards: &[Shard], shard_idx: usize, job: Job) {
    // Injected delayed completion: the worker sleeps before serving
    // the job. Per-shard FIFO is preserved — everything queued behind
    // simply waits — so a delay slows a completion without reordering.
    if matches!(job, Job::Apply { .. } | Job::Read { .. }) {
        if let Some(delay) = cp.faults.as_ref().and_then(|f| f.job_delay(shard_idx)) {
            std::thread::sleep(delay);
        }
    }
    match job {
        Job::Apply { shared, idxs } => {
            let result = {
                // vdisk-lint: allow(hot-path-index) reason="shard_idx is this worker thread's own spawn index into the shard table"
                let mut guard = shards[shard_idx].lock();
                catch_unwind(AssertUnwindSafe(|| {
                    idxs.iter()
                        .map(|&i| {
                            // vdisk-lint: allow(hot-path-index) reason="idxs were recorded against shared.txs when the batch was split by shard"
                            let tx = &shared.txs[i];
                            let applied =
                                with_retries(cp, shard_idx, &tx.object, &shared.retries, || {
                                    guard.apply_tx(cp, shared.default_seq, tx)
                                });
                            (i, applied)
                        })
                        .collect::<Vec<_>>()
                }))
            };
            exit_shard(cp, shards, shard_idx);
            match result {
                Ok(items) => shared.progress.complete(items),
                Err(_) => shared.progress.poison(),
            }
        }
        Job::Read { shared, idxs } => {
            let result = {
                // vdisk-lint: allow(hot-path-index) reason="shard_idx is this worker thread's own spawn index into the shard table"
                let guard = shards[shard_idx].lock();
                catch_unwind(AssertUnwindSafe(|| {
                    idxs.iter()
                        .map(|&i| {
                            // vdisk-lint: allow(hot-path-index) reason="idxs were recorded against shared.requests when the batch was split by shard"
                            let request = &shared.requests[i];
                            let served = with_retries(
                                cp,
                                shard_idx,
                                &request.object,
                                &shared.retries,
                                || guard.read_one(cp, &request.object, shared.snap, &request.ops),
                            );
                            let outcome = match served {
                                Ok((results, plan)) => ReadOutcome::Hit(results, plan),
                                Err(
                                    e @ (RadosError::NoSuchObject(_)
                                    | RadosError::NoSuchSnapshot { .. }),
                                ) => {
                                    // A miss still costs a round trip.
                                    ReadOutcome::Miss(e, ShardState::miss_plan(cp, &request.object))
                                }
                                Err(e) => ReadOutcome::Fail(e),
                            };
                            (i, outcome)
                        })
                        .collect::<Vec<_>>()
                }))
            };
            exit_shard(cp, shards, shard_idx);
            match result {
                Ok(items) => shared.progress.complete(items),
                Err(_) => shared.progress.poison(),
            }
        }
        Job::Flush { shared, slot } => {
            // FIFO per shard: reaching this marker means everything
            // enqueued before it on this shard has applied. Markers
            // carry no work, so they stay invisible to the
            // admission/concurrency counters.
            shared.complete(vec![(slot, ())]);
        }
        Job::Hold { gate } => {
            let _ = gate.wait();
        }
    }
}

fn exit_shard(cp: &ControlPlane, shards: &[Shard], shard_idx: usize) {
    // vdisk-lint: allow(hot-path-index) reason="shard_idx is the calling worker's own spawn index into the shard table"
    shards[shard_idx].job_done(&cp.stats);
}

/// Runs one item's attempt under the cluster's fault plane and retry
/// policy — the retryable-IO core. The fault check happens **before**
/// `attempt` touches any state, so replaying a failed draw is
/// idempotent: nothing of the failed attempt ever applied, and the job
/// never leaves the worker, so per-shard FIFO order (and the
/// write-epoch protocol client caches rely on) is untouched. A
/// retryable draw replays in place with bounded exponential backoff;
/// budget exhaustion and non-retryable faults surface as
/// [`RadosError::Injected`]. Real errors from `attempt` itself (e.g. a
/// torn durable commit) are never replayed — they may have partially
/// applied.
fn with_retries<T>(
    cp: &ControlPlane,
    shard_idx: usize,
    object: &str,
    retries: &AtomicU64,
    mut attempt: impl FnMut() -> crate::Result<T>,
) -> crate::Result<T> {
    let mut replays: u32 = 0;
    loop {
        match cp.fault_for(shard_idx, object) {
            None => return attempt(),
            Some(kind) => {
                let err = RadosError::Injected {
                    kind,
                    shard: shard_idx,
                };
                if !err.is_retryable() || replays >= cp.retry.budget() {
                    return Err(err);
                }
                replays += 1;
                retries.fetch_add(1, Ordering::Relaxed);
                cp.stats.record_retries(1);
                let backoff = cp.retry.backoff_for(replays);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
        }
    }
}

/// A parking/wakeup completion signal shared between a reaping client
/// and the shard workers: a generation counter plus a condvar.
///
/// Workers **ring** the bell every time a slot of a subscribed
/// submission completes (see [`ApplyTicket::subscribe`] /
/// [`ReadTicket::subscribe`]). A reaper snapshots the
/// [`generation`](Doorbell::generation) *before* scanning its pending
/// operations for progress and, if nothing is ready, parks in
/// [`wait_past`](Doorbell::wait_past). Any ring after the snapshot
/// bumps the generation, so the reaper can never sleep through a
/// completion (no lost wakeups) — and never spins while idle.
pub struct Doorbell {
    generation: Mutex<u64>,
    cv: Condvar,
}

impl Doorbell {
    /// A fresh, shareable bell at generation zero.
    #[must_use]
    pub fn new() -> Arc<Doorbell> {
        Arc::new(Doorbell {
            generation: Mutex::new(0),
            cv: Condvar::new(),
        })
    }

    /// The current generation. Snapshot this **before** scanning for
    /// completed work, then hand it to [`Doorbell::wait_past`].
    #[must_use]
    pub fn generation(&self) -> u64 {
        *self
            .generation
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Rings the bell: bumps the generation and wakes every parked
    /// waiter.
    pub fn ring(&self) {
        let mut generation = self
            .generation
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *generation += 1;
        drop(generation);
        self.cv.notify_all();
    }

    /// Parks until the generation moves past `seen`; returns
    /// immediately if it already has. Returns the generation observed
    /// on wakeup.
    pub fn wait_past(&self, seen: u64) -> u64 {
        let mut generation = self
            .generation
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *generation == seen {
            generation = self
                .cv
                .wait(generation)
                .unwrap_or_else(PoisonError::into_inner);
        }
        *generation
    }

    /// [`Doorbell::wait_past`] with a deadline: parks until the
    /// generation moves past `seen` **or** `timeout` elapses. The
    /// escape hatch for waiters whose readiness can change without
    /// anyone ringing — a token-bucket refill is a function of wall
    /// time, so a rate-limited tenant parks with the time-to-next-token
    /// as its deadline. Returns the generation observed on wakeup.
    pub fn wait_past_for(&self, seen: u64, timeout: std::time::Duration) -> u64 {
        let deadline = std::time::Instant::now() + timeout;
        let mut generation = self
            .generation
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *generation == seen {
            let now = std::time::Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                break;
            };
            let (guard, _timed_out) = self
                .cv
                .wait_timeout(generation, left)
                .unwrap_or_else(PoisonError::into_inner);
            generation = guard;
        }
        *generation
    }
}

/// Completion state shared between a submission's jobs and its ticket:
/// one slot per submitted item, a remaining count, and a condvar.
pub(crate) struct Progress<T> {
    state: Mutex<ProgressState<T>>,
    cv: Condvar,
}

struct ProgressState<T> {
    slots: Vec<Option<T>>,
    remaining: usize,
    poisoned: bool,
    /// Bells rung on every slot completion (and on poison), so reapers
    /// parked on a [`Doorbell`] wake as each shard's part lands.
    subscribers: Vec<Arc<Doorbell>>,
    /// Slots already drained by [`Progress::take_ready`].
    taken: usize,
}

impl<T> Progress<T> {
    pub(crate) fn new(items: usize) -> Self {
        Progress {
            state: Mutex::new(ProgressState {
                slots: (0..items).map(|_| None).collect(),
                remaining: items,
                poisoned: false,
                subscribers: Vec::new(),
                taken: 0,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ProgressState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Fills completed slots; signals waiters when the last slot lands
    /// and rings every subscribed doorbell on **each** call, so parked
    /// reapers wake per shard rather than per submission.
    pub(crate) fn complete(&self, items: Vec<(usize, T)>) {
        let mut guard = self.lock();
        for (i, item) in items {
            // vdisk-lint: allow(hot-path-index) reason="slot indices were issued by this Progress at submit and sized its slots vec"
            debug_assert!(guard.slots[i].is_none(), "slot {i} completed twice");
            // vdisk-lint: allow(hot-path-index) reason="slot indices were issued by this Progress at submit and sized its slots vec"
            guard.slots[i] = Some(item);
            guard.remaining -= 1;
        }
        if guard.remaining == 0 {
            self.cv.notify_all();
        }
        let bells = guard.subscribers.clone();
        drop(guard);
        for bell in bells {
            bell.ring();
        }
    }

    /// Marks the submission failed by a panicking worker.
    fn poison(&self) {
        let mut guard = self.lock();
        guard.poisoned = true;
        self.cv.notify_all();
        let bells = std::mem::take(&mut guard.subscribers);
        drop(guard);
        for bell in bells {
            bell.ring();
        }
    }

    /// Registers a bell to ring on every future slot completion. Rings
    /// it immediately if the submission is already done, so a reaper
    /// subscribing late never parks past a finished op.
    pub(crate) fn subscribe(&self, bell: &Arc<Doorbell>) {
        let mut guard = self.lock();
        guard.subscribers.push(Arc::clone(bell));
        let done = guard.remaining == 0 || guard.poisoned;
        drop(guard);
        if done {
            bell.ring();
        }
    }

    /// Drains every completed-but-undrained slot without blocking,
    /// returning `(slot, item)` pairs plus the number of slots still
    /// undrained. Use either this **or** [`Progress::wait`] on one
    /// submission, never both.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked while serving this submission
    /// (as [`Progress::wait`]).
    pub(crate) fn take_ready(&self) -> (Vec<(usize, T)>, usize) {
        let mut guard = self.lock();
        assert!(!guard.poisoned, "shard worker panicked");
        let mut items = Vec::new();
        for (i, slot) in guard.slots.iter_mut().enumerate() {
            if let Some(item) = slot.take() {
                items.push((i, item));
            }
        }
        guard.taken += items.len();
        let undrained = guard.slots.len() - guard.taken;
        (items, undrained)
    }

    /// True once every slot has completed.
    pub(crate) fn is_done(&self) -> bool {
        let guard = self.lock();
        guard.remaining == 0 || guard.poisoned
    }

    /// Blocks until every slot has completed, then returns the items in
    /// submission order.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked while serving this submission
    /// (mirroring the panic propagation of the old scoped-thread path).
    pub(crate) fn wait(&self) -> Vec<T> {
        let mut guard = self.lock();
        while guard.remaining > 0 && !guard.poisoned {
            guard = self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
        }
        assert!(!guard.poisoned, "shard worker panicked");
        guard
            .slots
            .iter_mut()
            // vdisk-lint: allow(hot-path-panic) reason="wait returns only once remaining == 0, and every decrement filled its slot under this lock"
            .map(|slot| slot.take().expect("every slot completed"))
            .collect()
    }
}

/// Shared state of one write submission. Each slot completes with the
/// transaction's cost plan, or with the dynamic-precondition error
/// ([`RadosError::CompareFailed`]) that stopped that one transaction.
pub(crate) struct ApplyShared {
    pub(crate) txs: Vec<Transaction>,
    /// Snapshot sequence captured once at submit, so every transaction
    /// of the submission sees one consistent snapshot context.
    pub(crate) default_seq: u64,
    pub(crate) progress: Progress<crate::Result<Plan>>,
    /// In-worker replays of this submission's items under the fault
    /// plane; folded into the ticket's `stats_delta`.
    pub(crate) retries: AtomicU64,
}

/// Shared state of one read submission.
pub(crate) struct ReadShared {
    pub(crate) requests: Vec<ObjectReads>,
    pub(crate) snap: Option<SnapId>,
    pub(crate) progress: Progress<ReadOutcome>,
    /// In-worker replays of this submission's items under the fault
    /// plane; folded into the ticket's `stats_delta`.
    pub(crate) retries: AtomicU64,
}

/// What one object's read request produced.
pub(crate) enum ReadOutcome {
    /// The object exists; its results and cost plan.
    Hit(Vec<ReadResult>, Plan),
    /// The object is absent (now, or at the snapshot). Carries the
    /// original error (for single-object callers that must fail) and
    /// the miss cost plan (for batched callers that zero-fill).
    Miss(RadosError, Plan),
    /// A non-miss error; fails the whole submission.
    Fail(RadosError),
}

/// Tracks the "issued but not yet reaped" bracket of one submission
/// against the cluster-wide queue-depth counter. Decrements exactly
/// once — on `wait` or on drop.
pub(crate) struct DepthGuard {
    cp: Arc<ControlPlane>,
    open: bool,
}

impl DepthGuard {
    pub(crate) fn open(cp: Arc<ControlPlane>) -> Self {
        cp.stats.enter_submission();
        DepthGuard { cp, open: true }
    }

    /// A guard for submissions that dispatch nothing (empty batches):
    /// never counts against the queue depth.
    pub(crate) fn noop(cp: Arc<ControlPlane>) -> Self {
        DepthGuard { cp, open: false }
    }

    fn close(&mut self) {
        if self.open {
            self.open = false;
            self.cp.stats.exit_submission();
        }
    }
}

impl Drop for DepthGuard {
    fn drop(&mut self) {
        self.close();
    }
}

/// Keeps one shard's worker deliberately parked until released (or
/// dropped) — the test hook behind [`crate::Cluster::hold_shard`] for
/// proving that client-side waits park instead of spinning while a
/// completion is delayed. Jobs enqueued behind the hold sit in the
/// shard's FIFO until release. In inline mode (no workers) there is
/// nothing to hold and the handle is a pre-released no-op.
pub struct ShardHold {
    gate: Arc<Progress<()>>,
    released: bool,
}

impl ShardHold {
    pub(crate) fn new(gate: Arc<Progress<()>>, released: bool) -> ShardHold {
        ShardHold { gate, released }
    }

    /// Releases the held worker. Idempotent; also runs on drop, so a
    /// leaked hold cannot wedge the cluster's shutdown.
    pub fn release(&mut self) {
        if !self.released {
            self.released = true;
            self.gate.complete(vec![(0, ())]);
        }
    }
}

impl Drop for ShardHold {
    fn drop(&mut self) {
        self.release();
    }
}

impl std::fmt::Debug for ShardHold {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ShardHold(released: {})", self.released)
    }
}

/// An in-flight write submission (from [`crate::Cluster::submit_batch`]).
///
/// Holding the ticket keeps the submission's buffers alive; dropping it
/// without waiting abandons the results (the writes still apply).
#[must_use = "a submission completes in the background; wait() reaps its cost plan"]
pub struct ApplyTicket {
    pub(crate) shared: Arc<ApplyShared>,
    pub(crate) stats: crate::cluster::ExecStats,
    pub(crate) depth: DepthGuard,
}

impl ApplyTicket {
    /// True once every shard has applied its part.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.shared.progress.is_done()
    }

    /// Registers `bell` to be rung each time a shard finishes its part
    /// of this submission (and once more if it is already complete), so
    /// a reaper can park on the bell instead of polling
    /// [`ApplyTicket::is_complete`].
    pub fn subscribe(&self, bell: &Arc<Doorbell>) {
        self.shared.progress.subscribe(bell);
    }

    /// Blocks until the submission has fully applied and returns
    /// [`Plan::par`] of the per-transaction cost plans, in submission
    /// order — exactly what the synchronous
    /// [`crate::Cluster::execute_batch`] returns.
    ///
    /// # Errors
    ///
    /// Returns the first [`crate::RadosError::CompareFailed`] if a
    /// transaction's [`crate::TxOp::CompareXattr`] precondition did not
    /// hold at apply time. That transaction applied nothing; other
    /// transactions of the submission are unaffected (the batch
    /// all-or-nothing guarantee covers static validation, not dynamic
    /// preconditions).
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked while applying.
    pub fn wait(mut self) -> crate::Result<Plan> {
        let outcomes = self.shared.progress.wait();
        self.depth.close();
        let mut plans = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            plans.push(outcome?);
        }
        Ok(Plan::par(plans))
    }

    /// Exact operation counts attributable to this submission (the
    /// cluster-wide high-water marks are not per-op quantities and stay
    /// zero here; read them from [`crate::Cluster::exec_stats`]).
    #[must_use]
    pub fn stats_delta(&self) -> crate::cluster::ExecStats {
        let mut stats = self.stats;
        stats.retries = self.shared.retries.load(Ordering::Relaxed);
        stats
    }
}

impl std::fmt::Debug for ApplyTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ApplyTicket({} txs, complete: {})",
            self.shared.txs.len(),
            self.is_complete()
        )
    }
}

/// An in-flight read submission (from
/// [`crate::Cluster::submit_read_batch`]).
#[must_use = "a submission completes in the background; wait() reaps its results"]
pub struct ReadTicket {
    pub(crate) shared: Arc<ReadShared>,
    pub(crate) stats: crate::cluster::ExecStats,
    pub(crate) depth: DepthGuard,
}

impl ReadTicket {
    /// True once every shard has served its part.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.shared.progress.is_done()
    }

    /// Registers `bell` to be rung each time a shard finishes its part
    /// of this submission (and once more if it is already complete), so
    /// a reaper can park on the bell and drain landed results
    /// incrementally via [`ReadTicket::take_ready`].
    pub fn subscribe(&self, bell: &Arc<Doorbell>) {
        self.shared.progress.subscribe(bell);
    }

    /// Drains the request slots whose results have already landed,
    /// without blocking: one `(slot, results, plan)` triple per newly
    /// completed request, where `results` is `None` for objects absent
    /// now or at the snapshot. Closes the queue-depth bracket once the
    /// last slot is drained. Use either this **or**
    /// [`ReadTicket::wait`] on one ticket, never both.
    ///
    /// # Errors
    ///
    /// Propagates the first error other than a missing object/snapshot;
    /// the submission should be abandoned then.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked while serving.
    #[allow(clippy::type_complexity)]
    pub fn take_ready(&mut self) -> crate::Result<Vec<(usize, Option<Vec<ReadResult>>, Plan)>> {
        let (items, undrained) = self.shared.progress.take_ready();
        if undrained == 0 {
            self.depth.close();
        }
        let mut out = Vec::with_capacity(items.len());
        for (i, outcome) in items {
            match outcome {
                ReadOutcome::Hit(res, plan) => out.push((i, Some(res), plan)),
                ReadOutcome::Miss(_, plan) => out.push((i, None, plan)),
                ReadOutcome::Fail(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Blocks until the submission has fully completed. Returns one
    /// result slot per request (in submission order; `None` for objects
    /// absent now or at the snapshot) plus [`Plan::par`] of the
    /// per-request costs — exactly what the synchronous
    /// [`crate::Cluster::read_batch`] returns.
    ///
    /// # Errors
    ///
    /// Propagates any error other than a missing object/snapshot.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked while serving.
    #[allow(clippy::type_complexity)]
    pub fn wait(self) -> crate::Result<(Vec<Option<Vec<ReadResult>>>, Plan)> {
        let outcomes = self.into_outcomes();
        let mut results = Vec::with_capacity(outcomes.len());
        let mut plans = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            match outcome {
                ReadOutcome::Hit(res, plan) => {
                    results.push(Some(res));
                    plans.push(plan);
                }
                ReadOutcome::Miss(_, plan) => {
                    results.push(None);
                    plans.push(plan);
                }
                ReadOutcome::Fail(e) => return Err(e),
            }
        }
        Ok((results, Plan::par(plans)))
    }

    /// Exact operation counts attributable to this submission.
    #[must_use]
    pub fn stats_delta(&self) -> crate::cluster::ExecStats {
        let mut stats = self.stats;
        stats.retries = self.shared.retries.load(Ordering::Relaxed);
        stats
    }

    /// Blocks for completion and hands back the raw per-request
    /// outcomes (single-object callers distinguish miss kinds).
    pub(crate) fn into_outcomes(mut self) -> Vec<ReadOutcome> {
        let outcomes = self.shared.progress.wait();
        self.depth.close();
        outcomes
    }
}

impl std::fmt::Debug for ReadTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ReadTicket({} requests, complete: {})",
            self.shared.requests.len(),
            self.is_complete()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_completes_out_of_order() {
        let p: Progress<u32> = Progress::new(3);
        assert!(!p.is_done());
        p.complete(vec![(2, 20)]);
        p.complete(vec![(0, 0), (1, 10)]);
        assert!(p.is_done());
        assert_eq!(p.wait(), vec![0, 10, 20]);
    }

    #[test]
    #[should_panic(expected = "shard worker panicked")]
    fn poisoned_progress_panics_waiters() {
        let p: Progress<u32> = Progress::new(1);
        p.poison();
        let _ = p.wait();
    }

    #[test]
    fn doorbell_rings_on_every_partial_completion() {
        let p: Progress<u32> = Progress::new(2);
        let bell = Doorbell::new();
        p.subscribe(&bell);
        let g0 = bell.generation();
        p.complete(vec![(1, 10)]);
        let g1 = bell.wait_past(g0);
        assert!(g1 > g0, "each slot completion must ring the bell");
        let (items, undrained) = p.take_ready();
        assert_eq!(items, vec![(1, 10)]);
        assert_eq!(undrained, 1);
        p.complete(vec![(0, 0)]);
        bell.wait_past(g1);
        let (items, undrained) = p.take_ready();
        assert_eq!(items, vec![(0, 0)]);
        assert_eq!(undrained, 0);
    }

    #[test]
    fn subscribing_to_a_done_submission_rings_immediately() {
        let p: Progress<u32> = Progress::new(0);
        let bell = Doorbell::new();
        let g0 = bell.generation();
        p.subscribe(&bell);
        assert!(
            bell.generation() > g0,
            "late subscription to a finished submission must not park"
        );
    }

    #[test]
    fn queue_is_fifo_and_drains_on_close() {
        let q = ShardQueue::new();
        let shared = Arc::new(ApplyShared {
            txs: Vec::new(),
            default_seq: 0,
            progress: Progress::new(0),
            retries: AtomicU64::new(0),
        });
        for i in 0..3 {
            q.push(Job::Apply {
                shared: Arc::clone(&shared),
                idxs: vec![i],
            });
        }
        q.close();
        let mut seen = Vec::new();
        while let Some(Job::Apply { idxs, .. }) = q.pop() {
            seen.extend(idxs);
        }
        assert_eq!(seen, vec![0, 1, 2], "closed queues still drain FIFO");
    }
}
