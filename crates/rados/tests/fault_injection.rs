//! The fault plane under test: seeded transient/persistent/delay
//! injection, the in-worker retry layer (bounded, visible in stats),
//! and the durable backend's torn-commit crash point.
//!
//! CI's fault matrix runs this suite across backends and seeds:
//! `VDISK_BACKEND=memory|file` selects the store and
//! `VDISK_FAULT_SEED` reseeds every cluster's fault stream, so each
//! matrix cell exercises a different deterministic schedule.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use vdisk_rados::{
    BackendKind, Cluster, FaultConfig, FaultKind, RadosError, ReadOp, RetryPolicy, Transaction,
};

/// The matrix seed: every cluster in this suite derives its fault
/// stream from it, so one env var re-rolls the whole schedule.
fn matrix_seed() -> u64 {
    std::env::var("VDISK_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xFA_17)
}

fn scratch(label: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/backend-scratch")
        .join(format!(
            "{label}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
}

fn write_tx(object: &str, fill: u8) -> Transaction {
    let mut tx = Transaction::new(object.to_string());
    tx.write(0, vec![fill; 4096]);
    tx
}

/// Transient faults at a high rate are absorbed by the retry layer:
/// every op still succeeds, and the injections and replays are both
/// visible — in the plane's counters and in `ExecStats::retries`.
#[test]
fn transient_faults_are_retried_and_visible_in_stats() {
    let cluster = Cluster::builder()
        .fault_plane(FaultConfig::new(matrix_seed()).transient_rate(0.4))
        .build();
    for i in 0..64 {
        cluster
            .execute(write_tx(&format!("obj-{i}"), i as u8))
            .unwrap();
    }
    for i in 0..64 {
        let (results, _) = cluster
            .read(
                &format!("obj-{i}"),
                None,
                &[ReadOp::Read {
                    offset: 0,
                    len: 4096,
                }],
            )
            .unwrap();
        assert_eq!(
            results[0].as_data()[0],
            i as u8,
            "retried IO must replay intact"
        );
    }
    let plane = cluster.fault_plane().expect("plane configured");
    assert!(plane.injected_transients() > 0, "a 40% rate must fire");
    assert!(
        cluster.exec_stats().retries >= plane.injected_transients(),
        "every absorbed transient is at least one recorded retry"
    );
}

/// Per-ticket stats carry the retries their own op absorbed: a
/// submitted batch against a high transient rate replays in the
/// worker and reports those replays in its `stats_delta`.
#[test]
fn ticket_stats_count_their_own_retries() {
    let cluster = Cluster::builder()
        .fault_plane(
            FaultConfig::new(matrix_seed())
                .transient_rate(0.9)
                .max_consecutive(3),
        )
        .build();
    let mut ticket_retries = 0;
    for i in 0..16 {
        let ticket = cluster
            .submit_batch(vec![write_tx(&format!("hot-{i}"), i as u8)])
            .unwrap();
        while !ticket.is_complete() {
            std::thread::yield_now();
        }
        ticket_retries += ticket.stats_delta().retries;
        ticket.wait().unwrap();
    }
    assert!(
        ticket_retries > 0,
        "a 90% transient rate must replay at least one of 16 batches"
    );
    assert_eq!(
        cluster.exec_stats().retries,
        ticket_retries,
        "the cluster-wide counter is the sum of the tickets'"
    );
}

/// A persistent fault is not retried: it surfaces immediately as a
/// typed, non-retryable error naming the faulted shard.
#[test]
fn persistent_faults_surface_without_retries() {
    let cluster = Cluster::builder()
        .fault_plane(FaultConfig::new(matrix_seed()).fail_objects("poison", FaultKind::Persistent))
        .build();
    let err = cluster.execute(write_tx("poison-pill", 1)).unwrap_err();
    match &err {
        RadosError::Injected { kind, .. } => assert_eq!(*kind, FaultKind::Persistent),
        other => panic!("expected an injected fault, got {other}"),
    }
    assert!(!err.is_retryable());
    assert_eq!(
        cluster.exec_stats().retries,
        0,
        "persistent faults must not burn retry budget"
    );
    // Unmatched objects are untouched.
    cluster.execute(write_tx("healthy", 2)).unwrap();
}

/// `RetryPolicy::none` turns even transient faults into surfaced
/// errors — the knob callers use to see every injection.
#[test]
fn retry_policy_none_surfaces_transients() {
    let cluster = Cluster::builder()
        .fault_plane(FaultConfig::new(matrix_seed()).fail_objects("victim", FaultKind::Transient))
        .retry_policy(RetryPolicy::none())
        .build();
    let err = cluster.execute(write_tx("victim-0", 1)).unwrap_err();
    assert!(
        matches!(
            err,
            RadosError::Injected {
                kind: FaultKind::Transient,
                ..
            }
        ),
        "got {err}"
    );
    assert!(err.is_retryable(), "transients stay typed as retryable");
}

/// A bounded budget exhausts against an always-faulting object: the
/// op fails with the transient error after exactly budget replays.
#[test]
fn retry_budget_exhaustion_fails_the_op() {
    let cluster = Cluster::builder()
        .fault_plane(FaultConfig::new(matrix_seed()).fail_objects("cursed", FaultKind::Transient))
        .retry_policy(
            RetryPolicy::default()
                .max_retries(3)
                .backoff(Duration::ZERO, Duration::ZERO),
        )
        .build();
    let err = cluster.execute(write_tx("cursed-obj", 1)).unwrap_err();
    assert!(matches!(
        err,
        RadosError::Injected {
            kind: FaultKind::Transient,
            ..
        }
    ));
    assert_eq!(
        cluster.exec_stats().retries,
        3,
        "exactly the budget's replays are recorded"
    );
}

/// Delay injection slows completions without failing them.
#[test]
fn delays_are_injected_and_counted() {
    let cluster = Cluster::builder()
        .fault_plane(FaultConfig::new(matrix_seed()).delay(1.0, Duration::from_micros(50)))
        .build();
    for i in 0..8 {
        cluster
            .execute(write_tx(&format!("slow-{i}"), i as u8))
            .unwrap();
    }
    let plane = cluster.fault_plane().unwrap();
    assert!(plane.injected_delays() >= 8, "rate 1.0 delays every job");
}

/// The same seed yields the same injection schedule: fault decisions
/// are a pure function of (seed, shard, draw index), independent of
/// wall-clock or thread timing.
#[test]
fn fault_schedule_is_deterministic_per_seed() {
    let run = |seed: u64| -> (u64, Vec<bool>) {
        let cluster = Cluster::builder()
            .shard_count(1)
            .fault_plane(FaultConfig::new(seed).transient_rate(0.5))
            .retry_policy(RetryPolicy::none())
            .build();
        let outcomes: Vec<bool> = (0..32)
            .map(|i| cluster.execute(write_tx(&format!("d-{i}"), 0)).is_ok())
            .collect();
        (
            cluster.fault_plane().unwrap().injected_transients(),
            outcomes,
        )
    };
    let seed = matrix_seed();
    assert_eq!(run(seed), run(seed), "same seed, same schedule");
    assert_ne!(
        run(seed).1,
        run(seed ^ 0xDEAD_BEEF).1,
        "different seeds must diverge (astronomically unlikely to collide)"
    );
}

/// The durable backend's torn-commit crash: the crash point sits
/// between the temp-file write and the rename, so the store directory
/// is left with the *pre-crash* object content plus a stray `.tmp` —
/// exactly what a kill -9 between those syscalls leaves. A reopened
/// cluster sees the last fully renamed state.
#[test]
fn file_backend_crash_leaves_torn_commit_and_recovers_prior_state() {
    let dir = scratch("crash-commit");
    {
        // One replica, so each transaction is exactly one durable
        // commit and the crash ordinal addresses transactions.
        let cluster = Cluster::builder()
            .backend(BackendKind::File { dir: dir.clone() })
            .replicas(1)
            .fault_plane(FaultConfig::new(matrix_seed()).crash_at_commit(1))
            .build();
        cluster.execute(write_tx("obj", 0xAA)).unwrap(); // commit #0 lands
        let err = cluster.execute(write_tx("obj", 0xBB)).unwrap_err(); // #1 crashes
        assert!(
            matches!(
                err,
                RadosError::Injected {
                    kind: FaultKind::Crash,
                    ..
                }
            ),
            "got {err}"
        );
        assert!(cluster.fault_plane().unwrap().crashed());
        // The latch holds: everything after the crash fails fast.
        assert!(cluster.execute(write_tx("other", 1)).is_err());
        cluster.flush();
    }
    // Evidence of the tear on disk, then recovery to state #0.
    let torn = walk(&dir)
        .into_iter()
        .any(|p| p.extension().is_some_and(|e| e == "tmp"));
    assert!(torn, "the crashed commit must leave its temp file behind");
    let cluster = Cluster::builder()
        .backend(BackendKind::File { dir })
        .replicas(1)
        .build();
    let (results, _) = cluster
        .read(
            "obj",
            None,
            &[ReadOp::Read {
                offset: 0,
                len: 4096,
            }],
        )
        .unwrap();
    assert_eq!(
        results[0].as_data()[0],
        0xAA,
        "recovery must surface the last renamed commit, not the torn one"
    );
}

fn walk(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                out.push(path);
            }
        }
    }
    out
}
