//! Concurrency stress over the sharded cluster: many client threads,
//! each acting as one "image", hammer `execute_batch`/`read_batch` on
//! one shared cluster. Asserts, loom-free:
//!
//! - `ExecStats` totals are exact under contention (no lost updates);
//! - the final object state is byte-identical to a sequential replay
//!   of the same per-thread operation streams;
//! - a malformed transaction in a batch spanning many shards leaves
//!   every shard untouched (batch-level all-or-nothing);
//! - replicas stay consistent (scrub is clean after the storm).
//!
//! CI runs this under `--release` so the concurrent path is exercised
//! with optimizations on.

use vdisk_rados::{Cluster, ObjectReads, RadosError, ReadOp, Transaction};

const THREADS: usize = 8;
const BATCHES_PER_THREAD: usize = 16;
const OBJS_PER_BATCH: usize = 6;
/// Objects per thread; smaller than the write count so later batches
/// overwrite earlier objects (exercising RMW and COW paths too).
const OBJS_PER_THREAD: usize = 24;

fn object_name(thread: usize, batch: usize, slot: usize) -> String {
    let obj = (batch * OBJS_PER_BATCH + slot) % OBJS_PER_THREAD;
    format!("img{thread}.obj{obj:04}")
}

fn payload(thread: usize, batch: usize, slot: usize) -> Vec<u8> {
    let fill = (thread * 31 + batch * 7 + slot + 1) as u8;
    vec![fill; 1024 * (1 + slot % 4)]
}

fn batch_txs(thread: usize, batch: usize) -> Vec<Transaction> {
    (0..OBJS_PER_BATCH)
        .map(|slot| {
            let mut tx = Transaction::new(object_name(thread, batch, slot));
            tx.write((slot as u64) * 512, payload(thread, batch, slot));
            tx.omap_set(vec![(
                format!("seq.{batch:04}").into_bytes(),
                vec![slot as u8; 8],
            )]);
            tx
        })
        .collect()
}

fn read_requests(thread: usize, batch: usize) -> Vec<ObjectReads> {
    (0..OBJS_PER_BATCH)
        .map(|slot| {
            ObjectReads::new(
                object_name(thread, batch, slot),
                vec![ReadOp::Read {
                    offset: 0,
                    len: 16384,
                }],
            )
        })
        .collect()
}

fn build_cluster() -> Cluster {
    Cluster::builder()
        .osd_count(5)
        .replicas(3)
        .shard_count(8)
        // Force scoped-thread application so the concurrent path is
        // exercised even on single-core CI hosts.
        .concurrent_apply(true)
        .build()
}

/// Runs every thread's operation stream on `cluster`, concurrently or
/// sequentially. Threads only ever touch their own objects, so the
/// final state is schedule-independent and must match across modes.
fn run_streams(cluster: &Cluster, concurrent: bool) {
    let work = |thread: usize| {
        for batch in 0..BATCHES_PER_THREAD {
            cluster.execute_batch(batch_txs(thread, batch)).unwrap();
            let (results, plan) = cluster
                .read_batch(None, read_requests(thread, batch))
                .unwrap();
            assert_eq!(results.len(), OBJS_PER_BATCH);
            for (slot, result) in results.iter().enumerate() {
                let data = result.as_ref().expect("just-written object exists")[0].as_data();
                let expected = payload(thread, batch, slot);
                let off = slot * 512;
                assert_eq!(
                    &data[off..off + expected.len()],
                    &expected[..],
                    "thread {thread} batch {batch} slot {slot} read back wrong bytes"
                );
            }
            // One plan child per request even if some were misses.
            assert!(plan.op_count() > 0);
        }
    };
    if concurrent {
        std::thread::scope(|s| {
            for thread in 0..THREADS {
                s.spawn(move || work(thread));
            }
        });
    } else {
        for thread in 0..THREADS {
            work(thread);
        }
    }
}

#[test]
fn concurrent_batches_keep_exact_stats_and_sequential_byte_identity() {
    let concurrent = build_cluster();
    let sequential = build_cluster();
    run_streams(&concurrent, true);
    run_streams(&sequential, false);

    // Counter exactness: every transaction, batch and read op counted
    // once, with no lost updates under contention.
    let c = concurrent.exec_stats();
    let s = sequential.exec_stats();
    let expected_batches = (THREADS * BATCHES_PER_THREAD) as u64;
    let expected_txs = expected_batches * OBJS_PER_BATCH as u64;
    assert_eq!(c.transactions, expected_txs);
    assert_eq!(c.batches, expected_batches);
    assert_eq!(c.read_ops, expected_txs);
    assert_eq!(
        (s.transactions, s.batches, s.read_ops),
        (c.transactions, c.batches, c.read_ops)
    );

    // The shard-parallelism counters observed the fan-out.
    assert!(
        c.shard_fanout_max >= 2,
        "six distinct objects per batch must span >= 2 of 8 shards"
    );
    assert!(c.shard_concurrency_peak >= 1);
    assert!(c.shard_concurrency_peak <= concurrent.shard_count() as u64);

    // Byte-identity with the sequential replay: same object
    // directory, same data, same OMAP, on every object.
    let names = concurrent.list_objects();
    assert_eq!(names, sequential.list_objects());
    assert_eq!(names.len(), THREADS * OBJS_PER_THREAD);
    for name in &names {
        let ops = [
            ReadOp::Read {
                offset: 0,
                len: 16384,
            },
            ReadOp::OmapGetRange {
                start: Vec::new(),
                end: vec![0xFF; 12],
            },
            ReadOp::Stat,
        ];
        let (a, _) = concurrent.read(name, None, &ops).unwrap();
        let (b, _) = sequential.read(name, None, &ops).unwrap();
        assert_eq!(a, b, "object {name} diverged from the sequential replay");
    }

    // Replication survived the storm.
    let report = concurrent.scrub();
    assert!(report.is_clean(), "divergent: {:?}", report.divergent);
    assert_eq!(report.objects_checked, names.len());
}

#[test]
fn malformed_tx_in_a_multi_shard_batch_applies_nothing() {
    let cluster = build_cluster();
    // 16 distinct objects spread over many shards, plus one bad tx.
    let mut txs: Vec<Transaction> = (0..16)
        .map(|i| {
            let mut tx = Transaction::new(format!("atomic{i}"));
            tx.write(0, vec![0x5A; 2048]);
            tx
        })
        .collect();
    let mut bad = Transaction::new("atomic-bad");
    bad.write(0, Vec::new()); // invalid: empty write
    txs.insert(7, bad);

    assert!(matches!(
        cluster.execute_batch(txs),
        Err(RadosError::InvalidArgument(_))
    ));
    assert!(
        cluster.list_objects().is_empty(),
        "no shard may apply anything from a rejected batch"
    );
    let stats = cluster.exec_stats();
    assert_eq!(stats.transactions, 0);
    assert_eq!(stats.batches, 0);
}

#[test]
fn concurrent_writers_on_disjoint_objects_never_corrupt_each_other() {
    // A tighter interleaving check: two threads ping-pong batches over
    // objects that share shards, with reads racing writes.
    let cluster = build_cluster();
    std::thread::scope(|s| {
        for t in 0..4usize {
            let cluster = cluster.clone();
            s.spawn(move || {
                for round in 0..32usize {
                    let name = format!("pp{t}");
                    let fill = (t * 64 + round + 1) as u8;
                    let mut tx = Transaction::new(&name);
                    tx.write(0, vec![fill; 8192]);
                    cluster.execute_batch(vec![tx]).unwrap();
                    let (results, _) = cluster
                        .read_batch(
                            None,
                            vec![ObjectReads::new(
                                &name,
                                vec![ReadOp::Read {
                                    offset: 0,
                                    len: 8192,
                                }],
                            )],
                        )
                        .unwrap();
                    let data = results[0].as_ref().unwrap()[0].as_data();
                    // Own object: nobody else writes it, so the read
                    // must see exactly this round's fill.
                    assert!(
                        data.iter().all(|&b| b == fill),
                        "thread {t} round {round}: torn read"
                    );
                }
            });
        }
    });
    assert!(cluster.scrub().is_clean());
}

/// The asynchronous half of the storm: every thread keeps a queue of
/// in-flight submissions (writes *and* reads) at depth 8 instead of
/// waiting on each — cross-batch concurrency on the shard work queues.
/// The per-shard FIFO ordering rule must make the final state
/// byte-identical to a sequential replay of the same streams, and the
/// realized client queue depth must register deterministically.
#[test]
fn async_submission_storm_matches_sequential_replay() {
    const DEPTH: usize = 8;

    let run_async = |cluster: &Cluster| {
        std::thread::scope(|s| {
            for thread in 0..THREADS {
                let cluster = cluster.clone();
                s.spawn(move || {
                    let mut write_tickets = Vec::new();
                    let mut read_tickets = Vec::new();
                    for batch in 0..BATCHES_PER_THREAD {
                        write_tickets.push(cluster.submit_batch(batch_txs(thread, batch)).unwrap());
                        // The read of this batch is submitted while the
                        // write (and up to DEPTH predecessors) is still
                        // in flight; FIFO per shard makes it exact.
                        read_tickets.push((
                            batch,
                            cluster.submit_read_batch(None, read_requests(thread, batch)),
                        ));
                        if write_tickets.len() >= DEPTH {
                            let plan = write_tickets.remove(0).wait().unwrap();
                            assert!(plan.op_count() > 0);
                        }
                        if read_tickets.len() >= DEPTH {
                            let (batch, ticket) = read_tickets.remove(0);
                            verify_read(thread, batch, ticket);
                        }
                    }
                    for ticket in write_tickets {
                        let _ = ticket.wait();
                    }
                    for (batch, ticket) in read_tickets {
                        verify_read(thread, batch, ticket);
                    }
                });
            }
        });
    };

    let concurrent = build_cluster();
    run_async(&concurrent);
    let sequential = build_cluster();
    run_streams(&sequential, false);

    // Exact counters under async contention: every submission counted
    // once, and the client-side queue depth registered.
    let c = concurrent.exec_stats();
    let expected_batches = (THREADS * BATCHES_PER_THREAD) as u64;
    assert_eq!(c.batches, expected_batches);
    assert_eq!(c.transactions, expected_batches * OBJS_PER_BATCH as u64);
    assert_eq!(c.read_ops, expected_batches * OBJS_PER_BATCH as u64);
    assert!(
        c.queue_depth_peak >= DEPTH as u64,
        "a depth-{DEPTH} submission loop must register at least that depth, got {}",
        c.queue_depth_peak
    );
    // Each batch spans several shards, all admitted before any applies,
    // so multi-shard concurrency registers deterministically; genuine
    // cross-submission wall-clock overlap needs a second core.
    assert!(c.shard_concurrency_peak >= 2);
    assert!(c.shard_concurrency_peak <= concurrent.shard_count() as u64);

    // Byte-identity with the sequential replay, on every object.
    let names = concurrent.list_objects();
    assert_eq!(names, sequential.list_objects());
    for name in &names {
        let ops = [
            ReadOp::Read {
                offset: 0,
                len: 16384,
            },
            ReadOp::OmapGetRange {
                start: Vec::new(),
                end: vec![0xFF; 12],
            },
            ReadOp::Stat,
        ];
        let (a, _) = concurrent.read(name, None, &ops).unwrap();
        let (b, _) = sequential.read(name, None, &ops).unwrap();
        assert_eq!(a, b, "object {name} diverged from the sequential replay");
    }
    assert!(concurrent.scrub().is_clean());
}

/// A read ticket submitted immediately after its batch's write must
/// see exactly that batch's bytes, even reaped depth-8 later.
fn verify_read(thread: usize, batch: usize, ticket: vdisk_rados::ReadTicket) {
    let (results, plan) = ticket.wait().unwrap();
    assert_eq!(results.len(), OBJS_PER_BATCH);
    assert!(plan.op_count() > 0);
    for (slot, result) in results.iter().enumerate() {
        let data = result.as_ref().expect("just-written object exists")[0].as_data();
        let expected = payload(thread, batch, slot);
        let off = slot * 512;
        assert_eq!(
            &data[off..off + expected.len()],
            &expected[..],
            "thread {thread} batch {batch} slot {slot} read back wrong bytes"
        );
    }
}
