//! Backend equivalence: the durable file backend must be
//! observationally identical to the in-memory one. Identical queued
//! action sequences (writes, snapshots, deletes, reads at head and at
//! snapshots) driven through a `MemStore` cluster and a `FileStore`
//! cluster must produce byte-identical read results and identical
//! [`ExecStats`] op counts — durability is allowed to cost host IO,
//! never to change what the store *means*.
//!
//! Both clusters run in inline mode (`concurrent_apply(false)`): the
//! comparison is of functional behaviour and deterministic counters,
//! not of worker-thread scheduling.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use vdisk_rados::{
    BackendKind, Cluster, ExecStats, ObjectReads, ReadOp, ReadResult, SnapId, Transaction,
};

/// A scratch directory inside the workspace's `target/` (tests must
/// not write outside the repository).
fn scratch(label: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/backend-scratch")
        .join(format!(
            "{label}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
}

#[derive(Debug, Clone)]
enum Action {
    Write {
        obj: u8,
        offset: u64,
        fill: u8,
        len: u64,
    },
    OmapSet {
        obj: u8,
        key: u8,
        value: u8,
    },
    SetXattr {
        obj: u8,
        value: u8,
    },
    Snapshot,
    Delete {
        obj: u8,
    },
    ReadHead {
        obj: u8,
        offset: u64,
        len: u64,
    },
    ReadSnap {
        idx: u8,
        obj: u8,
    },
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u8..4, 0u64..8192, any::<u8>(), 1u64..2048).prop_map(|(obj, offset, fill, len)| {
            Action::Write {
                obj,
                offset,
                fill,
                len,
            }
        }),
        (0u8..4, any::<u8>(), any::<u8>()).prop_map(|(obj, key, value)| Action::OmapSet {
            obj,
            key,
            value
        }),
        (0u8..4, any::<u8>()).prop_map(|(obj, value)| Action::SetXattr { obj, value }),
        Just(Action::Snapshot),
        (0u8..4).prop_map(|obj| Action::Delete { obj }),
        (0u8..4, 0u64..8192, 1u64..2048).prop_map(|(obj, offset, len)| Action::ReadHead {
            obj,
            offset,
            len
        }),
        (any::<u8>(), 0u8..4).prop_map(|(idx, obj)| Action::ReadSnap { idx, obj }),
    ]
}

fn obj_name(obj: u8) -> String {
    format!("obj{obj}")
}

/// Runs one batched read against both clusters and asserts the results
/// (data bytes, omap entries, xattrs, stat) are identical.
fn compare_read(mem: &Cluster, file: &Cluster, snap: Option<SnapId>, obj: u8, ops: Vec<ReadOp>) {
    let request = |c: &Cluster| -> Vec<Option<Vec<ReadResult>>> {
        let (results, _plan) = c
            .read_batch(
                snap,
                vec![ObjectReads {
                    object: obj_name(obj),
                    ops: ops.clone(),
                }],
            )
            .expect("batched reads surface misses as None, not Err");
        results
    };
    assert_eq!(request(mem), request(file), "read divergence on obj{obj}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn file_backend_is_observationally_identical_to_memory(
        actions in proptest::collection::vec(arb_action(), 1..50)
    ) {
        let dir = scratch("equiv");
        let mem = Cluster::builder()
            .backend(BackendKind::Memory)
            .concurrent_apply(false)
            .build();
        let file = Cluster::builder()
            .backend(BackendKind::File { dir: dir.clone() })
            .concurrent_apply(false)
            .build();
        let mut snaps: Vec<(SnapId, SnapId)> = Vec::new();

        for action in actions {
            match action {
                Action::Write { obj, offset, fill, len } => {
                    let tx = || {
                        let mut tx = Transaction::new(obj_name(obj));
                        tx.write(offset, vec![fill; len as usize]);
                        tx
                    };
                    let p1 = mem.submit_batch(vec![tx()]).unwrap().wait().unwrap();
                    let p2 = file.submit_batch(vec![tx()]).unwrap().wait().unwrap();
                    prop_assert_eq!(p1.op_count(), p2.op_count(), "write cost plans diverged");
                }
                Action::OmapSet { obj, key, value } => {
                    let tx = || {
                        let mut tx = Transaction::new(obj_name(obj));
                        tx.omap_set(vec![(vec![key], vec![value])]);
                        tx
                    };
                    mem.submit_batch(vec![tx()]).unwrap().wait().unwrap();
                    file.submit_batch(vec![tx()]).unwrap().wait().unwrap();
                }
                Action::SetXattr { obj, value } => {
                    let tx = || {
                        let mut tx = Transaction::new(obj_name(obj));
                        tx.set_xattr("tag", vec![value]);
                        tx
                    };
                    mem.submit_batch(vec![tx()]).unwrap().wait().unwrap();
                    file.submit_batch(vec![tx()]).unwrap().wait().unwrap();
                }
                Action::Snapshot => {
                    snaps.push((mem.create_snap(), file.create_snap()));
                }
                Action::Delete { obj } => {
                    // Deleting an absent object is a miss on both sides;
                    // only issue deletes both stores can apply.
                    if mem.object_exists(&obj_name(obj)) {
                        let tx = || {
                            let mut tx = Transaction::new(obj_name(obj));
                            tx.delete();
                            tx
                        };
                        mem.submit_batch(vec![tx()]).unwrap().wait().unwrap();
                        file.submit_batch(vec![tx()]).unwrap().wait().unwrap();
                    }
                }
                Action::ReadHead { obj, offset, len } => {
                    compare_read(&mem, &file, None, obj, vec![
                        ReadOp::Read { offset, len },
                        ReadOp::OmapGetRange { start: vec![], end: vec![0xFF, 0xFF] },
                        ReadOp::GetXattr("tag".into()),
                        ReadOp::Stat,
                    ]);
                }
                Action::ReadSnap { idx, obj } => {
                    if snaps.is_empty() {
                        continue;
                    }
                    let (s1, s2) = snaps[idx as usize % snaps.len()];
                    prop_assert_eq!(s1, s2, "snapshot ids diverged");
                    compare_read(&mem, &file, Some(s1), obj, vec![
                        ReadOp::Read { offset: 0, len: 4096 },
                    ]);
                }
            }
        }

        // The stores agree on the object set, replicas agree with each
        // other, and the op counters match exactly: the backends did
        // the same work, not merely similar work.
        prop_assert_eq!(mem.list_objects(), file.list_objects());
        prop_assert!(file.scrub().is_clean());
        let (s1, s2): (ExecStats, ExecStats) = (mem.exec_stats(), file.exec_stats());
        prop_assert_eq!(s1, s2, "ExecStats diverged between backends");
    }
}
