//! Durability acceptance for the file backend: a formatted store
//! survives dropping the process's cluster handles and reopening the
//! same directory — data, OMAP, xattrs, snapshots (including the
//! snapshot *sequence*), and committed deletions all intact — while a
//! reopen with mismatched geometry is refused.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use vdisk_rados::{BackendKind, Cluster, RadosError, ReadOp, SnapId, Transaction};

/// A scratch directory inside the workspace's `target/` (tests must
/// not write outside the repository).
fn scratch(label: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/backend-scratch")
        .join(format!(
            "{label}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
}

fn file_builder(dir: &Path) -> vdisk_rados::ClusterBuilder {
    Cluster::builder().backend(BackendKind::File {
        dir: dir.to_path_buf(),
    })
}

#[test]
fn full_state_survives_drop_and_reopen() {
    let dir = scratch("reopen");

    let snap = {
        let c = file_builder(&dir).build();
        let mut tx = Transaction::new("disk.0");
        tx.write(100, b"before snapshot".to_vec());
        tx.omap_set(vec![(b"iv.0".to_vec(), vec![0xAB; 16])]);
        tx.set_xattr("epoch", vec![7]);
        c.execute(tx).unwrap();

        let snap = c.create_snap();
        let mut tx = Transaction::new("disk.0");
        tx.write(100, b"after  snapshot".to_vec());
        c.execute(tx).unwrap();

        let mut tx = Transaction::new("doomed");
        tx.write(0, b"transient".to_vec());
        c.execute(tx).unwrap();
        let mut tx = Transaction::new("doomed");
        tx.delete();
        c.execute(tx).unwrap();

        c.flush();
        snap
        // Every handle drops here: the only copy of the state is now
        // the directory.
    };

    let c = file_builder(&dir).build();
    assert_eq!(
        c.snap_seq(),
        snap,
        "reopen must resume the snapshot sequence, not restart it"
    );
    assert_eq!(c.list_objects(), vec!["disk.0".to_string()]);
    assert!(!c.object_exists("doomed"), "committed delete must persist");

    let (results, _) = c
        .read(
            "disk.0",
            None,
            &[
                ReadOp::Read {
                    offset: 100,
                    len: 15,
                },
                ReadOp::OmapGetKeys(vec![b"iv.0".to_vec()]),
                ReadOp::GetXattr("epoch".into()),
            ],
        )
        .unwrap();
    assert_eq!(results[0].as_data(), b"after  snapshot");
    assert_eq!(results[1].as_omap(), &[(b"iv.0".to_vec(), vec![0xAB; 16])]);
    assert_eq!(results[2], vdisk_rados::ReadResult::Xattr(Some(vec![7])));

    // The pre-snapshot clone crossed the restart too.
    let (results, _) = c
        .read(
            "disk.0",
            Some(snap),
            &[ReadOp::Read {
                offset: 100,
                len: 15,
            }],
        )
        .unwrap();
    assert_eq!(results[0].as_data(), b"before snapshot");

    assert!(c.scrub().is_clean(), "replicas must agree after reopen");
}

#[test]
fn snapshots_taken_after_reopen_continue_the_sequence() {
    let dir = scratch("snapseq");
    let first = {
        let c = file_builder(&dir).build();
        c.create_snap()
        // create_snap persists the sequence on its own — no flush —
        // because clone visibility must never rewind.
    };
    let c = file_builder(&dir).build();
    let second = c.create_snap();
    assert_eq!(second, SnapId(first.0 + 1));
}

#[test]
fn reopen_with_different_geometry_is_refused() {
    let dir = scratch("geometry");
    {
        let c = file_builder(&dir).build();
        let mut tx = Transaction::new("obj");
        tx.write(0, vec![1]);
        c.execute(tx).unwrap();
        c.flush();
    }
    let err = file_builder(&dir).osd_count(5).replicas(5).try_build();
    assert!(
        matches!(&err, Err(RadosError::InvalidConfig(msg)) if msg.contains("geometry")),
        "unexpected result: {err:?}"
    );
}

#[test]
fn unflushed_commits_are_still_durable() {
    // Per-transaction commit (fsync) is the durability point, not
    // flush: a store dropped right after `execute` returns must still
    // reopen complete. (`flush` additionally syncs directories and the
    // meta file; object data never waits for it.)
    let dir = scratch("noflush");
    {
        let c = file_builder(&dir).build();
        let mut tx = Transaction::new("obj");
        tx.write(0, b"committed".to_vec());
        c.execute(tx).unwrap();
    }
    let c = file_builder(&dir).build();
    let (results, _) = c
        .read("obj", None, &[ReadOp::Read { offset: 0, len: 9 }])
        .unwrap();
    assert_eq!(results[0].as_data(), b"committed");
}
