//! Model-based property test: the replicated object store must agree
//! with a simple single-copy reference model under arbitrary
//! transaction/snapshot/read interleavings, and replicas must never
//! diverge.

use proptest::prelude::*;
use std::collections::HashMap;
use vdisk_rados::{Cluster, ReadOp, SnapId, Transaction};

#[derive(Debug, Clone)]
enum StoreOp {
    Write {
        obj: u8,
        offset: u64,
        fill: u8,
        len: u64,
    },
    OmapSet {
        obj: u8,
        key: u8,
        value: u8,
    },
    Snapshot,
    Delete {
        obj: u8,
    },
    VerifyData {
        obj: u8,
        offset: u64,
        len: u64,
    },
    VerifyOmap {
        obj: u8,
    },
    VerifySnapshot {
        idx: u8,
        obj: u8,
    },
    Scrub,
}

fn arb_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        (0u8..4, 0u64..8192, any::<u8>(), 1u64..2048).prop_map(|(obj, offset, fill, len)| {
            StoreOp::Write {
                obj,
                offset,
                fill,
                len,
            }
        }),
        (0u8..4, any::<u8>(), any::<u8>()).prop_map(|(obj, key, value)| StoreOp::OmapSet {
            obj,
            key,
            value
        }),
        Just(StoreOp::Snapshot),
        (0u8..4).prop_map(|obj| StoreOp::Delete { obj }),
        (0u8..4, 0u64..8192, 1u64..2048).prop_map(|(obj, offset, len)| StoreOp::VerifyData {
            obj,
            offset,
            len
        }),
        (0u8..4).prop_map(|obj| StoreOp::VerifyOmap { obj }),
        (any::<u8>(), 0u8..4).prop_map(|(idx, obj)| StoreOp::VerifySnapshot { idx, obj }),
        Just(StoreOp::Scrub),
    ]
}

#[derive(Debug, Clone, Default)]
struct ModelObject {
    data: Vec<u8>,
    omap: HashMap<Vec<u8>, Vec<u8>>,
}

type Model = HashMap<String, ModelObject>;

fn obj_name(obj: u8) -> String {
    format!("obj{obj}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cluster_matches_reference_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let cluster = Cluster::builder().build();
        let mut model: Model = HashMap::new();
        // (snap id, frozen model at that point)
        let mut snaps: Vec<(SnapId, Model)> = Vec::new();

        for op in ops {
            match op {
                StoreOp::Write { obj, offset, fill, len } => {
                    let mut tx = Transaction::new(obj_name(obj));
                    tx.write(offset, vec![fill; len as usize]);
                    cluster.execute(tx).unwrap();
                    let entry = model.entry(obj_name(obj)).or_default();
                    let end = (offset + len) as usize;
                    if entry.data.len() < end {
                        entry.data.resize(end, 0);
                    }
                    entry.data[offset as usize..end].fill(fill);
                }
                StoreOp::OmapSet { obj, key, value } => {
                    let mut tx = Transaction::new(obj_name(obj));
                    tx.omap_set(vec![(vec![key], vec![value])]);
                    cluster.execute(tx).unwrap();
                    model
                        .entry(obj_name(obj))
                        .or_default()
                        .omap
                        .insert(vec![key], vec![value]);
                }
                StoreOp::Snapshot => {
                    let id = cluster.create_snap();
                    snaps.push((id, model.clone()));
                }
                StoreOp::Delete { obj } => {
                    if model.remove(&obj_name(obj)).is_some() {
                        let mut tx = Transaction::new(obj_name(obj));
                        tx.delete();
                        cluster.execute(tx).unwrap();
                    }
                }
                StoreOp::VerifyData { obj, offset, len } => {
                    let name = obj_name(obj);
                    match model.get(&name) {
                        None => prop_assert!(
                            cluster.read(&name, None, &[ReadOp::Stat]).is_err()
                        ),
                        Some(m) => {
                            let (results, _) = cluster
                                .read(&name, None, &[ReadOp::Read { offset, len }])
                                .unwrap();
                            let mut expected = vec![0u8; len as usize];
                            for (i, byte) in expected.iter_mut().enumerate() {
                                let pos = offset as usize + i;
                                if pos < m.data.len() {
                                    *byte = m.data[pos];
                                }
                            }
                            prop_assert_eq!(results[0].as_data(), &expected[..]);
                        }
                    }
                }
                StoreOp::VerifyOmap { obj } => {
                    let name = obj_name(obj);
                    if let Some(m) = model.get(&name) {
                        let (results, _) = cluster
                            .read(
                                &name,
                                None,
                                &[ReadOp::OmapGetRange { start: vec![], end: vec![0xFF, 0xFF] }],
                            )
                            .unwrap();
                        let mut expected: Vec<(Vec<u8>, Vec<u8>)> =
                            m.omap.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                        expected.sort();
                        prop_assert_eq!(results[0].as_omap(), &expected[..]);
                    }
                }
                StoreOp::VerifySnapshot { idx, obj } => {
                    if snaps.is_empty() {
                        continue;
                    }
                    let (snap, frozen) = &snaps[idx as usize % snaps.len()];
                    let name = obj_name(obj);
                    if let Some(m) = frozen.get(&name) {
                        if m.data.is_empty() {
                            continue;
                        }
                        // The object may have been deleted from the head
                        // since; deletion removes clones in this model,
                        // so only check objects that still exist.
                        if !cluster.object_exists(&name) {
                            continue;
                        }
                        // An Err is acceptable: the object may have
                        // been recreated after deletion, i.e. born
                        // after this snapshot.
                        if let Ok((results, _)) = cluster.read(
                            &name,
                            Some(*snap),
                            &[ReadOp::Read { offset: 0, len: m.data.len() as u64 }],
                        ) {
                            prop_assert_eq!(
                                results[0].as_data(),
                                &m.data[..],
                                "snapshot {:?} of {} diverged", snap, name
                            );
                        }
                    }
                }
                StoreOp::Scrub => {
                    let report = cluster.scrub();
                    prop_assert!(
                        report.is_clean(),
                        "replicas diverged without fault injection: {:?}",
                        report.divergent
                    );
                }
            }
        }

        // Final invariants: model and store agree on the object set,
        // and all replicas agree with each other.
        let mut expected_names: Vec<String> = model.keys().cloned().collect();
        expected_names.sort();
        prop_assert_eq!(cluster.list_objects(), expected_names);
        prop_assert!(cluster.scrub().is_clean());
    }
}
