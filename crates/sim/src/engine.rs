//! The plan executor: an event-driven simulator with work-conserving
//! FIFO resources.
//!
//! Plans compile to DAGs of nodes (`Op`/`Busy`/`Delay`). A node is
//! dispatched to its resource **when it becomes ready** (all
//! predecessors done), in global ready-time order — so concurrent IOs
//! interleave stage-by-stage exactly as a pipelined storage stack does,
//! and a resource is never left idle while ready work queues behind an
//! unrelated plan (the classic flaw of reserve-at-issue simulators).

use crate::plan::Plan;
use crate::resource::{ResourceId, ResourceSpec};
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

pub(crate) struct ResourceState {
    spec: ResourceSpec,
    /// Earliest-free instant of each server (persists across
    /// [`Simulator::execute`] calls; cleared by [`Simulator::reset`]).
    free_at: Vec<SimTime>,
    busy: SimDuration,
    ops_served: u64,
}

impl ResourceState {
    fn new(spec: ResourceSpec) -> Self {
        let servers = spec.servers;
        ResourceState {
            spec,
            free_at: vec![SimTime::ZERO; servers],
            busy: SimDuration::ZERO,
            ops_served: 0,
        }
    }

    /// Starts service on the earliest-free server no earlier than
    /// `ready`; returns the completion time.
    fn dispatch(&mut self, ready: SimTime, service: SimDuration) -> SimTime {
        let (idx, _) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("resource has at least one server");
        let start = self.free_at[idx].max(ready);
        let done = start + service;
        self.free_at[idx] = done;
        self.busy += service;
        self.ops_served += 1;
        done
    }

    fn reset(&mut self) {
        self.free_at.fill(SimTime::ZERO);
        self.busy = SimDuration::ZERO;
        self.ops_served = 0;
    }
}

/// Per-resource utilization snapshot (see
/// [`Simulator::utilization_report`]).
#[derive(Debug, Clone)]
pub struct ResourceUsage {
    /// Resource name.
    pub name: String,
    /// Total busy time across all servers.
    pub busy: SimDuration,
    /// Ops served.
    pub ops: u64,
    /// Servers configured.
    pub servers: usize,
}

#[derive(Debug, Clone, Copy)]
enum NodeKind {
    Op {
        resource: ResourceId,
        bytes: u64,
    },
    Busy {
        resource: ResourceId,
        time: SimDuration,
    },
    Delay(SimDuration),
}

struct Node {
    kind: NodeKind,
    preds_remaining: usize,
    succs: Vec<usize>,
    ready: SimTime,
}

pub(crate) struct Instance {
    nodes: Vec<Node>,
    roots: Vec<usize>,
    remaining: usize,
    pub(crate) issued_at: SimTime,
    pub(crate) completed_at: Option<SimTime>,
}

impl Instance {
    /// Compiles a plan into a dependency DAG.
    pub(crate) fn compile(plan: &Plan, issued_at: SimTime) -> Instance {
        let mut nodes = Vec::new();
        // `frontier` = exits of the already-compiled prefix; the next
        // stage depends on all of them.
        fn build(plan: &Plan, preds: &[usize], nodes: &mut Vec<Node>) -> Vec<usize> {
            match plan {
                Plan::Noop => preds.to_vec(),
                Plan::Op { resource, bytes } => vec![push_node(
                    nodes,
                    NodeKind::Op {
                        resource: *resource,
                        bytes: *bytes,
                    },
                    preds,
                )],
                Plan::Busy { resource, time } => vec![push_node(
                    nodes,
                    NodeKind::Busy {
                        resource: *resource,
                        time: *time,
                    },
                    preds,
                )],
                Plan::Delay(d) => vec![push_node(nodes, NodeKind::Delay(*d), preds)],
                Plan::Seq(children) => {
                    let mut frontier = preds.to_vec();
                    for child in children {
                        frontier = build(child, &frontier, nodes);
                    }
                    frontier
                }
                Plan::Par(children) => {
                    let mut exits = Vec::new();
                    for child in children {
                        exits.extend(build(child, preds, nodes));
                    }
                    exits
                }
            }
        }
        fn push_node(nodes: &mut Vec<Node>, kind: NodeKind, preds: &[usize]) -> usize {
            let id = nodes.len();
            nodes.push(Node {
                kind,
                preds_remaining: preds.len(),
                succs: Vec::new(),
                ready: SimTime::ZERO,
            });
            for &p in preds {
                nodes[p].succs.push(id);
            }
            id
        }
        build(plan, &[], &mut nodes);
        let roots: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| (n.preds_remaining == 0).then_some(i))
            .collect();
        let remaining = nodes.len();
        Instance {
            nodes,
            roots,
            remaining,
            issued_at,
            completed_at: if remaining == 0 {
                Some(issued_at)
            } else {
                None
            },
        }
    }
}

/// The event-driven core shared by [`Simulator::execute`] and the
/// closed-loop runner.
pub(crate) struct Engine<'a> {
    pub(crate) resources: &'a mut Vec<ResourceState>,
    pub(crate) instances: Vec<Instance>,
    /// Min-heap of (completion_time, tiebreak, instance, node).
    heap: BinaryHeap<Reverse<(SimTime, u64, usize, usize)>>,
    seq: u64,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(resources: &'a mut Vec<ResourceState>) -> Self {
        Engine {
            resources,
            instances: Vec::new(),
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Issues a compiled instance; returns its index.
    pub(crate) fn issue(&mut self, plan: &Plan, at: SimTime) -> usize {
        let instance = Instance::compile(plan, at);
        let idx = self.instances.len();
        let roots = instance.roots.clone();
        self.instances.push(instance);
        for node in roots {
            self.node_ready(idx, node, at);
        }
        idx
    }

    fn node_ready(&mut self, inst: usize, node: usize, at: SimTime) {
        let done = match self.instances[inst].nodes[node].kind {
            NodeKind::Delay(d) => at + d,
            NodeKind::Op { resource, bytes } => {
                let state = self
                    .resources
                    .get_mut(resource.0)
                    .expect("plan references unknown resource");
                let service = state.spec.service_time(bytes);
                state.dispatch(at, service)
            }
            NodeKind::Busy { resource, time } => {
                let state = self
                    .resources
                    .get_mut(resource.0)
                    .expect("plan references unknown resource");
                state.dispatch(at, time)
            }
        };
        self.seq += 1;
        self.heap.push(Reverse((done, self.seq, inst, node)));
    }

    /// Processes events until an instance completes; returns
    /// `(instance, completion_time)`. `None` when no events remain.
    pub(crate) fn run_until_completion(&mut self) -> Option<(usize, SimTime)> {
        while let Some(Reverse((t, _, inst, node))) = self.heap.pop() {
            // Fan out to successors.
            let succs = std::mem::take(&mut self.instances[inst].nodes[node].succs);
            for s in &succs {
                let succ = &mut self.instances[inst].nodes[*s];
                succ.ready = succ.ready.max(t);
                succ.preds_remaining -= 1;
                if succ.preds_remaining == 0 {
                    let ready = succ.ready;
                    self.node_ready(inst, *s, ready);
                }
            }
            self.instances[inst].nodes[node].succs = succs;
            self.instances[inst].remaining -= 1;
            if self.instances[inst].remaining == 0 {
                self.instances[inst].completed_at = Some(t);
                return Some((inst, t));
            }
        }
        None
    }

    /// Drains every pending event.
    pub(crate) fn run_to_idle(&mut self) -> SimTime {
        let mut last = SimTime::ZERO;
        while let Some((_, t)) = self.run_until_completion() {
            last = last.max(t);
        }
        last
    }
}

/// Executes [`Plan`]s against registered resources and tracks
/// contention.
///
/// See the [crate docs](crate) for the execution model.
pub struct Simulator {
    pub(crate) resources: Vec<ResourceState>,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Simulator({} resources)", self.resources.len())
    }
}

impl Simulator {
    /// Creates an empty simulator.
    #[must_use]
    pub fn new() -> Self {
        Simulator {
            resources: Vec::new(),
        }
    }

    /// Registers a resource and returns its handle.
    pub fn add_resource(&mut self, spec: ResourceSpec) -> ResourceId {
        self.resources.push(ResourceState::new(spec));
        ResourceId(self.resources.len() - 1)
    }

    /// Executes a single plan whose first step becomes ready at
    /// `start`; returns the completion instant. Server occupancy
    /// persists across calls (sequential `execute`s contend), until
    /// [`Simulator::reset`].
    ///
    /// # Panics
    ///
    /// Panics if the plan references a resource not registered here.
    pub fn execute(&mut self, plan: &Plan, start: SimTime) -> SimTime {
        let mut engine = Engine::new(&mut self.resources);
        engine.issue(plan, start);
        let done = engine.run_to_idle();
        done.max(start)
    }

    /// Clears all occupancy and counters (the resource set is kept).
    pub fn reset(&mut self) {
        for r in &mut self.resources {
            r.reset();
        }
    }

    /// Utilization and op counts per resource, for diagnostics.
    #[must_use]
    pub fn utilization_report(&self) -> Vec<ResourceUsage> {
        self.resources
            .iter()
            .map(|r| ResourceUsage {
                name: r.spec.name.clone(),
                busy: r.busy,
                ops: r.ops_served,
                servers: r.spec.servers,
            })
            .collect()
    }

    /// The spec a resource was registered with.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this simulator.
    #[must_use]
    pub fn spec(&self, id: ResourceId) -> &ResourceSpec {
        &self.resources[id.0].spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micros(us: u64) -> SimDuration {
        SimDuration::from_micros(us)
    }

    #[test]
    fn single_op_timing() {
        let mut sim = Simulator::new();
        let r = sim.add_resource(ResourceSpec::pipe("p", 1e9, micros(10)));
        let done = sim.execute(&Plan::op(r, 1000), SimTime::ZERO);
        // 10µs per-op + 1µs transfer.
        assert_eq!(done.as_nanos(), 11_000);
    }

    #[test]
    fn ops_on_one_server_serialize() {
        let mut sim = Simulator::new();
        let r = sim.add_resource(ResourceSpec::pipe("p", 1e9, micros(10)));
        let p = Plan::par([Plan::op(r, 0), Plan::op(r, 0)]);
        let done = sim.execute(&p, SimTime::ZERO);
        assert_eq!(done.as_nanos(), 20_000, "two ops must serialize");
    }

    #[test]
    fn ops_on_k_servers_parallelize() {
        let mut sim = Simulator::new();
        let r = sim.add_resource(ResourceSpec::servers("p", 2, 1e9, micros(10)));
        let p = Plan::par([Plan::op(r, 0), Plan::op(r, 0)]);
        let done = sim.execute(&p, SimTime::ZERO);
        assert_eq!(done.as_nanos(), 10_000, "two servers run concurrently");
    }

    #[test]
    fn seq_sums_par_maxes() {
        let mut sim = Simulator::new();
        let a = sim.add_resource(ResourceSpec::latency_only("a", 8, micros(5)));
        let b = sim.add_resource(ResourceSpec::latency_only("b", 8, micros(9)));
        let seq = sim.execute(&Plan::seq([Plan::op(a, 0), Plan::op(b, 0)]), SimTime::ZERO);
        assert_eq!(seq.as_nanos(), 14_000);
        sim.reset();
        let par = sim.execute(&Plan::par([Plan::op(a, 0), Plan::op(b, 0)]), SimTime::ZERO);
        assert_eq!(par.as_nanos(), 9_000);
    }

    #[test]
    fn delay_is_uncontended() {
        let mut sim = Simulator::new();
        let p = Plan::par([
            Plan::delay(micros(50)),
            Plan::delay(micros(50)),
            Plan::delay(micros(50)),
        ]);
        let done = sim.execute(&p, SimTime::ZERO);
        assert_eq!(done.as_nanos(), 50_000, "delays never queue");
    }

    #[test]
    fn busy_occupies_for_explicit_duration() {
        let mut sim = Simulator::new();
        let r = sim.add_resource(ResourceSpec::latency_only("kv", 1, micros(1)));
        let p = Plan::par([Plan::busy(r, micros(100)), Plan::busy(r, micros(100))]);
        let done = sim.execute(&p, SimTime::ZERO);
        assert_eq!(done.as_nanos(), 200_000, "busy times serialize too");
    }

    #[test]
    fn reservations_persist_across_execute_calls() {
        let mut sim = Simulator::new();
        let r = sim.add_resource(ResourceSpec::pipe("p", 1e9, micros(10)));
        let first = sim.execute(&Plan::op(r, 0), SimTime::ZERO);
        let second = sim.execute(&Plan::op(r, 0), SimTime::ZERO);
        assert_eq!(first.as_nanos(), 10_000);
        assert_eq!(second.as_nanos(), 20_000);
        sim.reset();
        let third = sim.execute(&Plan::op(r, 0), SimTime::ZERO);
        assert_eq!(third.as_nanos(), 10_000);
    }

    #[test]
    fn diamond_dependency_joins_at_max() {
        // Seq[a, Par[b_fast, c_slow], d]: d starts when BOTH b and c
        // are done.
        let mut sim = Simulator::new();
        let fast = sim.add_resource(ResourceSpec::latency_only("fast", 4, micros(1)));
        let slow = sim.add_resource(ResourceSpec::latency_only("slow", 4, micros(100)));
        let p = Plan::seq([
            Plan::op(fast, 0),
            Plan::par([Plan::op(fast, 0), Plan::op(slow, 0)]),
            Plan::op(fast, 0),
        ]);
        let done = sim.execute(&p, SimTime::ZERO);
        assert_eq!(done.as_nanos(), 102_000);
    }

    #[test]
    fn utilization_report_counts() {
        let mut sim = Simulator::new();
        let r = sim.add_resource(ResourceSpec::pipe("disk", 1e9, micros(1)));
        sim.execute(&Plan::op(r, 1000), SimTime::ZERO);
        sim.execute(&Plan::op(r, 1000), SimTime::ZERO);
        let report = sim.utilization_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].ops, 2);
        assert_eq!(report[0].busy.as_nanos(), 4_000);
        assert_eq!(report[0].name, "disk");
    }

    #[test]
    fn ready_time_respected() {
        let mut sim = Simulator::new();
        let r = sim.add_resource(ResourceSpec::pipe("p", 1e9, micros(10)));
        let done = sim.execute(&Plan::op(r, 0), SimTime::from_nanos(100_000));
        assert_eq!(done.as_nanos(), 110_000);
    }

    #[test]
    fn noop_completes_instantly() {
        let mut sim = Simulator::new();
        let t = SimTime::from_nanos(5);
        assert_eq!(sim.execute(&Plan::Noop, t), t);
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn unknown_resource_panics() {
        let mut sim = Simulator::new();
        let bogus = ResourceId(7);
        sim.execute(&Plan::op(bogus, 0), SimTime::ZERO);
    }
}
