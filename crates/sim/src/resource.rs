//! Resources: the contended hardware components of the simulated
//! testbed (NICs, network links, CPU pools, NVMe arrays, KV engines).

use crate::time::SimDuration;

/// Identifies a resource registered with a
/// [`Simulator`](crate::Simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(pub(crate) usize);

/// Static description of a resource.
///
/// A resource has `servers` independent channels; each op occupies one
/// channel for `per_op + bytes / bytes_per_sec`. A `bytes_per_sec` of
/// `f64::INFINITY` (see [`ResourceSpec::latency_only`]) models a purely
/// per-op-cost resource.
#[derive(Debug, Clone)]
pub struct ResourceSpec {
    /// Human-readable name (appears in utilization reports).
    pub name: String,
    /// Number of independent servers/channels.
    pub servers: usize,
    /// Throughput of one server in bytes/second.
    pub bytes_per_sec: f64,
    /// Fixed cost per operation on top of the byte cost.
    pub per_op: SimDuration,
}

impl ResourceSpec {
    /// A single-channel pipe (e.g. one network link).
    #[must_use]
    pub fn pipe(name: &str, bytes_per_sec: f64, per_op: SimDuration) -> Self {
        Self::servers(name, 1, bytes_per_sec, per_op)
    }

    /// A k-server resource (e.g. an NVMe array with `servers` channels).
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or `bytes_per_sec <= 0`.
    #[must_use]
    pub fn servers(name: &str, servers: usize, bytes_per_sec: f64, per_op: SimDuration) -> Self {
        assert!(servers > 0, "resource {name} must have at least one server");
        assert!(
            bytes_per_sec > 0.0,
            "resource {name} must have positive throughput"
        );
        ResourceSpec {
            name: name.to_string(),
            servers,
            bytes_per_sec,
            per_op,
        }
    }

    /// A resource with per-op cost only (no byte cost), e.g. a request
    /// dispatcher.
    #[must_use]
    pub fn latency_only(name: &str, servers: usize, per_op: SimDuration) -> Self {
        ResourceSpec {
            name: name.to_string(),
            servers,
            bytes_per_sec: f64::INFINITY,
            per_op,
        }
    }

    /// Service time of one op of `bytes` on a free server.
    #[must_use]
    pub fn service_time(&self, bytes: u64) -> SimDuration {
        if self.bytes_per_sec.is_infinite() {
            return self.per_op;
        }
        let transfer = SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec);
        self.per_op + transfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_combines_per_op_and_bytes() {
        let r = ResourceSpec::pipe("link", 1_000_000_000.0, SimDuration::from_micros(10));
        // 1 GB/s -> 1 byte/ns; 1000 bytes = 1µs + 10µs per-op.
        assert_eq!(r.service_time(1000), SimDuration::from_micros(11));
    }

    #[test]
    fn latency_only_ignores_bytes() {
        let r = ResourceSpec::latency_only("cpu", 2, SimDuration::from_micros(7));
        assert_eq!(r.service_time(0), SimDuration::from_micros(7));
        assert_eq!(r.service_time(1 << 30), SimDuration::from_micros(7));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = ResourceSpec::servers("bad", 0, 1.0, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive throughput")]
    fn zero_rate_rejected() {
        let _ = ResourceSpec::servers("bad", 1, 0.0, SimDuration::ZERO);
    }
}
