//! Simulated time: nanosecond-resolution instants and durations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A duration in simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// From milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// From fractional seconds (saturating at zero for negatives).
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1e9).round() as u64)
    }

    /// As nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// As fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As fractional microseconds.
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// From nanoseconds since start.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since start.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since start.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant (saturating).
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert!((SimDuration::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(10);
        assert_eq!(t.as_nanos(), 10_000);
        let d = t - SimTime::from_nanos(4_000);
        assert_eq!(d.as_nanos(), 6_000);
        // Saturation, never underflow.
        assert_eq!(SimTime::ZERO - t, SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_nanos(5).saturating_sub(SimDuration::from_nanos(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_micros(1) < SimDuration::from_millis(1));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5.000µs");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs_f64(5.0)), "5.000s");
    }
}
