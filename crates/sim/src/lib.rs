//! A small discrete-event **cost simulator** for storage stacks.
//!
//! The reproduction separates *function* from *time*: the object store,
//! the LSM and the encryption layer all operate on real bytes, while
//! the time each operation would take on the paper's testbed is
//! computed here. An IO is described as a [`Plan`] — a fork/join DAG of
//! resource usages (`Seq`/`Par`/`Op`/`Delay`) — and executed against
//! [`ResourceSpec`]s that model pipes (NICs, links), k-way parallel
//! servers (NVMe channels, CPU pools) and fixed latencies.
//!
//! The execution model is *reservation order = submission order*: each
//! `Op` reserves the earliest-free server of its resource at the moment
//! the plan step becomes ready. This is the classic approximation for
//! closed-loop FIFO pipelines and is exact for the steady-state
//! throughput questions the paper's figures ask.
//!
//! # Example
//!
//! ```
//! use vdisk_sim::{Plan, ResourceSpec, SimDuration, Simulator};
//!
//! let mut sim = Simulator::new();
//! let nic = sim.add_resource(ResourceSpec::pipe("nic", 1.0e9, SimDuration::from_micros(5)));
//! let disk = sim.add_resource(ResourceSpec::servers(
//!     "disk", 4, 0.5e9, SimDuration::from_micros(80)));
//!
//! // One 4 KB write: NIC transfer, then disk commit.
//! let plan = Plan::seq([Plan::op(nic, 4096), Plan::op(disk, 4096)]);
//! let stats = sim.run_closed_loop(32, 1000, |_| (plan.clone(), 4096));
//! assert!(stats.bandwidth_mb_s() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod closed_loop;
mod engine;
mod plan;
mod resource;
mod time;

pub use closed_loop::{ClosedLoopStats, LatencyStats};
pub use engine::{ResourceUsage, Simulator};
pub use plan::Plan;
pub use resource::{ResourceId, ResourceSpec};
pub use time::{SimDuration, SimTime};
