//! Plans: fork/join cost DAGs describing what an IO does to the
//! simulated hardware.

use crate::resource::ResourceId;
use crate::time::SimDuration;

/// A cost plan. Composable with [`Plan::seq`] and [`Plan::par`]; every
/// storage operation in the stack (RADOS ops, OMAP updates, crypto
/// work, replication fan-out) compiles to one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Occupy one server of `resource` for its per-op cost plus the
    /// transfer time of `bytes`.
    Op {
        /// Which resource the op runs on.
        resource: ResourceId,
        /// Payload size driving the transfer-time component.
        bytes: u64,
    },
    /// Occupy one server of `resource` for an explicit duration
    /// (used when the service time is computed elsewhere, e.g. from an
    /// LSM work receipt).
    Busy {
        /// Which resource the op runs on.
        resource: ResourceId,
        /// How long one server is occupied.
        time: SimDuration,
    },
    /// A fixed, uncontended delay (e.g. propagation latency).
    Delay(SimDuration),
    /// Children run one after another.
    Seq(Vec<Plan>),
    /// Children all start together; the plan completes when the last
    /// child completes (fork/join). The cluster's batched dispatch
    /// returns one of these per batch — and since the sharded cluster
    /// applies shard groups on real threads, the modeled concurrency
    /// now mirrors genuinely concurrent application, not just a
    /// notional fan-out.
    Par(Vec<Plan>),
    /// Completes immediately.
    Noop,
}

impl Plan {
    /// An op on `resource` moving `bytes`.
    #[must_use]
    pub fn op(resource: ResourceId, bytes: u64) -> Plan {
        Plan::Op { resource, bytes }
    }

    /// Occupies `resource` for an explicit duration.
    #[must_use]
    pub fn busy(resource: ResourceId, time: SimDuration) -> Plan {
        Plan::Busy { resource, time }
    }

    /// A pure delay.
    #[must_use]
    pub fn delay(d: SimDuration) -> Plan {
        Plan::Delay(d)
    }

    /// Sequential composition; flattens nested `Seq`s and drops
    /// `Noop`s.
    #[must_use]
    pub fn seq(children: impl IntoIterator<Item = Plan>) -> Plan {
        let mut out = Vec::new();
        for child in children {
            match child {
                Plan::Noop => {}
                Plan::Seq(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Plan::Noop,
            1 => out.pop().expect("len checked"),
            _ => Plan::Seq(out),
        }
    }

    /// Parallel composition; flattens nested `Par`s and drops `Noop`s.
    #[must_use]
    pub fn par(children: impl IntoIterator<Item = Plan>) -> Plan {
        let mut out = Vec::new();
        for child in children {
            match child {
                Plan::Noop => {}
                Plan::Par(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Plan::Noop,
            1 => out.pop().expect("len checked"),
            _ => Plan::Par(out),
        }
    }

    /// `self` then `next`.
    #[must_use]
    pub fn then(self, next: Plan) -> Plan {
        Plan::seq([self, next])
    }

    /// Total bytes moved by all ops in the plan (for sanity checks).
    #[must_use]
    pub fn total_op_bytes(&self) -> u64 {
        match self {
            Plan::Op { bytes, .. } => *bytes,
            Plan::Busy { .. } | Plan::Delay(_) | Plan::Noop => 0,
            Plan::Seq(children) | Plan::Par(children) => {
                children.iter().map(Plan::total_op_bytes).sum()
            }
        }
    }

    /// Number of `Op` leaves (for sanity checks, e.g. "a 4 KB write
    /// touches N disk ops").
    #[must_use]
    pub fn op_count(&self) -> usize {
        match self {
            Plan::Op { .. } | Plan::Busy { .. } => 1,
            Plan::Delay(_) | Plan::Noop => 0,
            Plan::Seq(children) | Plan::Par(children) => children.iter().map(Plan::op_count).sum(),
        }
    }

    /// Number of ops hitting a specific resource.
    #[must_use]
    pub fn op_count_on(&self, resource: ResourceId) -> usize {
        match self {
            Plan::Op { resource: r, .. } | Plan::Busy { resource: r, .. } => {
                usize::from(*r == resource)
            }
            Plan::Delay(_) | Plan::Noop => 0,
            Plan::Seq(children) | Plan::Par(children) => {
                children.iter().map(|c| c.op_count_on(resource)).sum()
            }
        }
    }

    /// Bytes moved over a specific resource.
    #[must_use]
    pub fn bytes_on(&self, resource: ResourceId) -> u64 {
        match self {
            Plan::Op { resource: r, bytes } => {
                if *r == resource {
                    *bytes
                } else {
                    0
                }
            }
            Plan::Busy { .. } | Plan::Delay(_) | Plan::Noop => 0,
            Plan::Seq(children) | Plan::Par(children) => {
                children.iter().map(|c| c.bytes_on(resource)).sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R0: ResourceId = ResourceId(0);
    const R1: ResourceId = ResourceId(1);

    #[test]
    fn seq_flattens_and_prunes() {
        let p = Plan::seq([
            Plan::Noop,
            Plan::seq([Plan::op(R0, 1), Plan::op(R0, 2)]),
            Plan::op(R1, 3),
        ]);
        match &p {
            Plan::Seq(children) => assert_eq!(children.len(), 3),
            other => panic!("expected Seq, got {other:?}"),
        }
        assert_eq!(p.total_op_bytes(), 6);
    }

    #[test]
    fn singleton_collapses() {
        assert_eq!(Plan::seq([Plan::op(R0, 5)]), Plan::op(R0, 5));
        assert_eq!(Plan::par([Plan::op(R0, 5)]), Plan::op(R0, 5));
        assert_eq!(Plan::seq([]), Plan::Noop);
        assert_eq!(Plan::par([Plan::Noop, Plan::Noop]), Plan::Noop);
    }

    #[test]
    fn counting_helpers() {
        let p = Plan::par([
            Plan::op(R0, 100),
            Plan::seq([Plan::op(R1, 50), Plan::op(R0, 25)]),
            Plan::delay(SimDuration::from_micros(1)),
        ]);
        assert_eq!(p.op_count(), 3);
        assert_eq!(p.op_count_on(R0), 2);
        assert_eq!(p.op_count_on(R1), 1);
        assert_eq!(p.bytes_on(R0), 125);
        assert_eq!(p.bytes_on(R1), 50);
        assert_eq!(p.total_op_bytes(), 175);
    }

    #[test]
    fn then_chains() {
        let p = Plan::op(R0, 1).then(Plan::op(R1, 2)).then(Plan::op(R0, 3));
        assert_eq!(p.op_count(), 3);
        match p {
            Plan::Seq(c) => assert_eq!(c.len(), 3),
            other => panic!("expected Seq, got {other:?}"),
        }
    }
}
