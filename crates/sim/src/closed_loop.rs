//! Closed-loop workload runner: keeps a fixed number of IOs in flight,
//! exactly like `fio` with `iodepth=N` (the paper uses 32).

use crate::engine::{Engine, Simulator};
use crate::plan::Plan;
use crate::time::{SimDuration, SimTime};

/// Latency distribution summary over completed IOs.
#[derive(Debug, Clone)]
pub struct LatencyStats {
    /// Mean completion latency.
    pub mean: SimDuration,
    /// Median (p50).
    pub p50: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// Maximum observed.
    pub max: SimDuration,
}

/// Results of a closed-loop run.
#[derive(Debug, Clone)]
pub struct ClosedLoopStats {
    /// IOs completed.
    pub ops: u64,
    /// Payload bytes moved (as reported by the plan generator).
    pub bytes: u64,
    /// Total simulated wall time (first issue to last completion).
    pub makespan: SimDuration,
    /// Latency summary.
    pub latency: LatencyStats,
}

impl ClosedLoopStats {
    /// Throughput in MB/s (decimal MB, as the paper's figures use).
    #[must_use]
    pub fn bandwidth_mb_s(&self) -> f64 {
        if self.makespan == SimDuration::ZERO {
            return 0.0;
        }
        self.bytes as f64 / 1e6 / self.makespan.as_secs_f64()
    }

    /// Throughput in IOs per second.
    #[must_use]
    pub fn iops(&self) -> f64 {
        if self.makespan == SimDuration::ZERO {
            return 0.0;
        }
        self.ops as f64 / self.makespan.as_secs_f64()
    }
}

impl Simulator {
    /// Runs `total_ops` plans with `queue_depth` in flight at all
    /// times: the next IO is issued the moment one completes, as fio
    /// does with `iodepth=N`. `make_plan(i)` returns the plan for the
    /// i-th IO and the payload bytes it should be credited with.
    ///
    /// The simulator is reset before the run, so each call measures an
    /// independent workload on idle hardware.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth == 0` or `total_ops == 0`.
    pub fn run_closed_loop(
        &mut self,
        queue_depth: usize,
        total_ops: u64,
        mut make_plan: impl FnMut(u64) -> (Plan, u64),
    ) -> ClosedLoopStats {
        assert!(queue_depth > 0, "queue depth must be positive");
        assert!(total_ops > 0, "must run at least one op");
        self.reset();

        let mut engine = Engine::new(&mut self.resources);
        let mut total_bytes = 0u64;
        let mut issued = 0u64;
        let mut completed = 0u64;
        let mut latencies: Vec<SimDuration> = Vec::with_capacity(total_ops as usize);
        let mut last_completion = SimTime::ZERO;

        while issued < total_ops.min(queue_depth as u64) {
            let (plan, bytes) = make_plan(issued);
            total_bytes += bytes;
            engine.issue(&plan, SimTime::ZERO);
            issued += 1;
        }
        while completed < total_ops {
            let (inst, t) = engine
                .run_until_completion()
                .expect("outstanding IOs must complete");
            completed += 1;
            last_completion = last_completion.max(t);
            let issued_at = engine.instances[inst].issued_at;
            latencies.push(t - issued_at);
            if issued < total_ops {
                let (plan, bytes) = make_plan(issued);
                total_bytes += bytes;
                engine.issue(&plan, t);
                issued += 1;
            }
        }

        latencies.sort_unstable();
        let sum_ns: u64 = latencies.iter().map(|d| d.as_nanos()).sum();
        let pct = |p: f64| -> SimDuration {
            let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
            latencies[idx]
        };
        ClosedLoopStats {
            ops: total_ops,
            bytes: total_bytes,
            makespan: last_completion - SimTime::ZERO,
            latency: LatencyStats {
                mean: SimDuration::from_nanos(sum_ns / total_ops),
                p50: pct(0.50),
                p99: pct(0.99),
                max: *latencies.last().expect("at least one op"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceSpec;

    #[test]
    fn throughput_matches_single_pipe_rate() {
        // A single 1 GB/s pipe with negligible per-op cost: large-IO
        // closed-loop throughput must approach 1000 MB/s.
        let mut sim = Simulator::new();
        let pipe = sim.add_resource(ResourceSpec::pipe("pipe", 1e9, SimDuration::from_nanos(1)));
        let io = 1 << 20; // 1 MiB
        let stats = sim.run_closed_loop(8, 200, |_| (Plan::op(pipe, io), io));
        let bw = stats.bandwidth_mb_s();
        assert!((bw - 1000.0).abs() < 20.0, "bw = {bw} MB/s");
    }

    #[test]
    fn iops_bound_by_per_op_latency() {
        // One server, 10µs per op, zero bytes: 100K IOPS regardless of
        // queue depth.
        let mut sim = Simulator::new();
        let r = sim.add_resource(ResourceSpec::latency_only(
            "svc",
            1,
            SimDuration::from_micros(10),
        ));
        let stats = sim.run_closed_loop(32, 1000, |_| (Plan::op(r, 0), 0));
        let iops = stats.iops();
        assert!((iops - 100_000.0).abs() < 1_000.0, "iops = {iops}");
    }

    #[test]
    fn queue_depth_scales_k_server_throughput() {
        // 8 servers, 100µs per op: QD1 -> 10K IOPS, QD8 -> 80K IOPS.
        let make = || {
            let mut sim = Simulator::new();
            let r = sim.add_resource(ResourceSpec::latency_only(
                "svc",
                8,
                SimDuration::from_micros(100),
            ));
            (sim, r)
        };
        let (mut sim, r) = make();
        let qd1 = sim.run_closed_loop(1, 500, |_| (Plan::op(r, 0), 0)).iops();
        let (mut sim, r) = make();
        let qd8 = sim.run_closed_loop(8, 500, |_| (Plan::op(r, 0), 0)).iops();
        assert!((qd1 - 10_000.0).abs() < 200.0, "qd1 = {qd1}");
        assert!((qd8 - 80_000.0).abs() < 2_000.0, "qd8 = {qd8}");
    }

    #[test]
    fn two_stage_pipeline_overlaps() {
        // Stage A (10µs) then stage B (10µs), both 1-server: a closed
        // loop at QD2 should pipeline to ~100K IOPS (stage-limited),
        // not 50K (latency-limited).
        let mut sim = Simulator::new();
        let a = sim.add_resource(ResourceSpec::latency_only(
            "a",
            1,
            SimDuration::from_micros(10),
        ));
        let b = sim.add_resource(ResourceSpec::latency_only(
            "b",
            1,
            SimDuration::from_micros(10),
        ));
        let stats = sim.run_closed_loop(2, 2000, |_| {
            (Plan::seq([Plan::op(a, 0), Plan::op(b, 0)]), 0)
        });
        let iops = stats.iops();
        assert!(
            (iops - 100_000.0).abs() < 3_000.0,
            "pipeline must overlap stages: {iops}"
        );
    }

    #[test]
    fn latency_stats_ordered() {
        let mut sim = Simulator::new();
        let r = sim.add_resource(ResourceSpec::pipe("p", 1e9, SimDuration::from_micros(10)));
        let stats = sim.run_closed_loop(4, 100, |i| {
            let bytes = (i % 7) * 10_000;
            (Plan::op(r, bytes), bytes)
        });
        assert!(stats.latency.p50 <= stats.latency.p99);
        assert!(stats.latency.p99 <= stats.latency.max);
        assert!(stats.latency.mean <= stats.latency.max);
        assert_eq!(stats.ops, 100);
    }

    #[test]
    fn deeper_queue_never_reduces_bandwidth() {
        let build = || {
            let mut sim = Simulator::new();
            let disk = sim.add_resource(ResourceSpec::servers(
                "disk",
                4,
                2e9,
                SimDuration::from_micros(80),
            ));
            (sim, disk)
        };
        let (mut sim, disk) = build();
        let bw1 = sim
            .run_closed_loop(1, 300, |_| (Plan::op(disk, 4096), 4096))
            .bandwidth_mb_s();
        let (mut sim, disk) = build();
        let bw32 = sim
            .run_closed_loop(32, 300, |_| (Plan::op(disk, 4096), 4096))
            .bandwidth_mb_s();
        assert!(bw32 > bw1, "qd32 ({bw32}) must beat qd1 ({bw1})");
    }

    #[test]
    fn extra_stage_work_shows_up_under_load() {
        // Two workloads differing by one extra disk op per IO: the
        // closed-loop bandwidths must differ measurably (this is the
        // regression test for the reserve-at-issue flattening bug).
        let build = || {
            let mut sim = Simulator::new();
            let disk = sim.add_resource(ResourceSpec::servers(
                "disk",
                2,
                1e9,
                SimDuration::from_micros(100),
            ));
            (sim, disk)
        };
        let (mut sim, disk) = build();
        let light = sim
            .run_closed_loop(16, 400, |_| (Plan::op(disk, 4096), 4096))
            .bandwidth_mb_s();
        let (mut sim, disk) = build();
        let heavy = sim
            .run_closed_loop(16, 400, |_| {
                (
                    Plan::seq([Plan::op(disk, 4096), Plan::op(disk, 4096)]),
                    4096,
                )
            })
            .bandwidth_mb_s();
        assert!(
            light > heavy * 1.6,
            "double disk work must cost ~2x under saturation: {light} vs {heavy}"
        );
    }

    #[test]
    #[should_panic(expected = "queue depth must be positive")]
    fn zero_queue_depth_panics() {
        let mut sim = Simulator::new();
        sim.run_closed_loop(0, 1, |_| (Plan::Noop, 0));
    }
}
