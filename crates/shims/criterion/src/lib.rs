//! A minimal, offline stand-in for the [`criterion`] bench harness.
//!
//! The build environment has no registry access, so this in-tree shim
//! implements the subset of the criterion API the benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. It measures wall-clock time (median of
//! sampled batches) and prints one line per benchmark; there is no
//! statistical analysis, HTML report, or baseline comparison.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Per-iteration payload, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`-style label.
    #[must_use]
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Anything acceptable as a benchmark label.
pub trait IntoBenchmarkLabel {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim for a bounded total budget so
        // a full bench suite stays interactive.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(40);
        let per_sample = (target.as_nanos() / 8 / once.as_nanos()).clamp(1, 10_000) as u32;

        self.samples.clear();
        for _ in 0..8 {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / per_sample);
        }
    }

    fn median(&self) -> Duration {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        sorted.get(sorted.len() / 2).copied().unwrap_or_default()
    }
}

fn report(group: &str, label: &str, median: Duration, throughput: Option<Throughput>) {
    let name = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    let per_iter = median.as_secs_f64();
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if per_iter > 0.0 => {
            format!(
                "  {:>10.1} MiB/s",
                bytes as f64 / per_iter / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>10.1} elem/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("{name:<48} {:>12.3} µs/iter{rate}", per_iter * 1e6);
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration payload for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim sizes samples itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(
            &self.name,
            &id.into_label(),
            bencher.median(),
            self.throughput,
        );
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// The bench harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report("", &id.into_label(), bencher.median(), None);
        self
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($f(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::default();
        b.iter(|| black_box((0..10_000u64).sum::<u64>()));
        assert_eq!(b.samples.len(), 8);
        // Sub-nanosecond per-iteration times legitimately round to
        // zero; the median just has to be well-defined.
        let _ = b.median();
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(8)).sample_size(10);
        group.bench_function(BenchmarkId::new("f", "p"), |b| b.iter(|| black_box(0)));
        group.finish();
    }
}
