//! A minimal, offline stand-in for the [`proptest`] crate.
//!
//! The build environment has no registry access, so this in-tree shim
//! implements the subset of the proptest API the test suite uses:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, `any`,
//! ranges-as-strategies, tuples-of-strategies, [`collection::vec`],
//! [`option::of`], [`Just`], [`prop_oneof!`], and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//! failing cases are reported by panic (no shrinking), and generation
//! is deterministic per `(test, case-index)` so failures reproduce.
//!
//! [`proptest`]: https://crates.io/crates/proptest

use std::ops::Range;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic generator handed to strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for one case of one property. Seeded from the property name
    /// and the case index so every case is distinct but reproducible.
    #[must_use]
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut seed = 0x5EED_0000 ^ case;
        for b in name.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01B3) ^ u64::from(b);
        }
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        self.next_u64() % n
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let r = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&r[..chunk.len()]);
        }
    }
}

/// A value generator. The shim has no shrinking: `generate` is the
/// entire contract.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

macro_rules! arb_tuple {
    ($($t:ident),+) => {
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($t::arbitrary(rng),)+)
            }
        }
    };
}
arb_tuple!(A, B);
arb_tuple!(A, B, C);
arb_tuple!(A, B, C, D);

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            #[allow(clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            #[allow(clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as u64)
                    .wrapping_sub(*self.start() as u64)
                    .wrapping_add(1);
                (*self.start() as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($t:ident : $idx:tt),+) => {
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// One arm of a [`Union`]: a boxed generator function.
pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// A uniform choice among boxed strategy arms (see [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
}

impl<V> Union<V> {
    /// Builds a union from generator arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<UnionArm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        (self.arms[idx])(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` with a length in `len`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`](vec()).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option`s of `inner` (`None` half the time).
    #[must_use]
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// The usual glob import: strategies, config, and macros.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body
/// runs for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // prop_assume! skips a case by returning from this
                // closure; prop_assert! fails the test by panicking.
                let mut __case = || $body;
                __case();
            }
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

/// Uniformly picks one of the given strategies per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        $crate::Union::new(vec![
            $({
                let __s = $arm;
                Box::new(move |rng: &mut $crate::TestRng| {
                    $crate::Strategy::generate(&__s, rng)
                }) as Box<dyn Fn(&mut $crate::TestRng) -> _>
            },)+
        ])
    }};
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(TestRng::for_case("t", 3).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("r", 0);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_stay_in_bounds() {
        let mut rng = TestRng::for_case("v", 0);
        for _ in 0..200 {
            let v = collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_maps(a in 0u8..10, pair in (0u64..5, any::<bool>())) {
            prop_assume!(a != 9);
            prop_assert!(a < 10);
            prop_assert!(pair.0 < 5);
        }

        #[test]
        fn oneof_covers_arms(v in prop_oneof![Just(1u8), Just(2u8), 5u8..7u8]) {
            prop_assert!([1u8, 2, 5, 6].contains(&v));
        }
    }
}
