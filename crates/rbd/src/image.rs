//! Image lifecycle and the raw (unencrypted) IO path.

use crate::striping::{ObjectExtent, Striper};
use crate::{RbdError, Result, DEFAULT_OBJECT_SIZE};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};
use vdisk_rados::{
    ApplyTicket, Cluster, ObjectReads, ReadOp, ReadTicket, SharedBuf, SnapId, Transaction,
};
use vdisk_sim::Plan;

/// `stat()` output for an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageStat {
    /// Logical image size in bytes.
    pub size: u64,
    /// Object size used for striping.
    pub object_size: u64,
    /// Number of data objects that exist (sparse images have fewer
    /// than `size / object_size`).
    pub objects_written: usize,
}

/// A named image snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// User-facing snapshot name.
    pub name: String,
    /// Underlying RADOS snapshot id.
    pub id: SnapId,
}

/// An open virtual-disk image.
///
/// Cloning is cheap (the cluster handle is shared).
#[derive(Debug, Clone)]
pub struct Image {
    cluster: Cluster,
    name: String,
    size: u64,
    striper: Striper,
    /// Memoized shard-aware object names: a pure function of the image
    /// name, object number and cluster placement config, so the salt
    /// search runs once per object, not once per IO extent.
    object_names: Arc<Mutex<HashMap<u64, String>>>,
}

impl Image {
    fn header_object(name: &str) -> String {
        format!("rbd_header.{name}")
    }

    /// The RADOS object holding stripe `object_no` of this image.
    ///
    /// Names are **shard-aware**: generation is biased (by a salt
    /// suffix chosen deterministically from the cluster's placement
    /// function) so that consecutive objects of one image land on
    /// consecutive state shards. Pure hashing spreads objects only in
    /// expectation; striping them round-robin makes small queued IOs
    /// over neighbouring objects fan out over the maximum number of
    /// shard workers deterministically.
    #[must_use]
    pub fn object_name(&self, object_no: u64) -> String {
        let mut cache = self
            .object_names
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(name) = cache.get(&object_no) {
            return name.clone();
        }
        let name = self.compute_object_name(object_no);
        cache.insert(object_no, name.clone());
        name
    }

    fn compute_object_name(&self, object_no: u64) -> String {
        let plain = format!("rbd_data.{}.{object_no:016x}", self.name);
        let shards = self.cluster.shard_count();
        if shards <= 1 {
            return plain;
        }
        let target = (object_no % shards as u64) as usize;
        if self.cluster.placement_shard(&plain) == target {
            return plain;
        }
        // Expected tries ≈ shard count; 64 attempts miss with
        // probability (1 - 1/shards)^64 — negligible for any sane
        // shard count. The fallback keeps the name valid regardless.
        for salt in 0u32..64 {
            let candidate = format!("{plain}.{salt:02x}");
            if self.cluster.placement_shard(&candidate) == target {
                return candidate;
            }
        }
        plain
    }

    /// Creates an image with the default 4 MB object size.
    ///
    /// # Errors
    ///
    /// Returns [`RbdError::ImageExists`] if the name is taken.
    pub fn create(cluster: &Cluster, name: &str, size: u64) -> Result<Image> {
        Self::create_with_object_size(cluster, name, size, DEFAULT_OBJECT_SIZE)
    }

    /// Creates an image with an explicit object size.
    ///
    /// # Errors
    ///
    /// Returns [`RbdError::ImageExists`] if the name is taken, or
    /// [`RbdError::Rados`] on malformed parameters.
    pub fn create_with_object_size(
        cluster: &Cluster,
        name: &str,
        size: u64,
        object_size: u64,
    ) -> Result<Image> {
        let header = Self::header_object(name);
        if cluster.object_exists(&header) {
            return Err(RbdError::ImageExists(name.to_string()));
        }
        let mut tx = Transaction::new(header);
        tx.set_xattr("rbd.size", size.to_le_bytes().to_vec());
        tx.set_xattr("rbd.object_size", object_size.to_le_bytes().to_vec());
        cluster.execute(tx)?;
        Ok(Image {
            cluster: cluster.clone(),
            name: name.to_string(),
            size,
            striper: Striper::new(object_size),
            object_names: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// Opens an existing image.
    ///
    /// # Errors
    ///
    /// Returns [`RbdError::ImageNotFound`] if it does not exist.
    pub fn open(cluster: &Cluster, name: &str) -> Result<Image> {
        let header = Self::header_object(name);
        let (results, _) = cluster
            .read(
                &header,
                None,
                &[
                    ReadOp::GetXattr("rbd.size".into()),
                    ReadOp::GetXattr("rbd.object_size".into()),
                ],
            )
            .map_err(|_| RbdError::ImageNotFound(name.to_string()))?;
        let parse_u64 = |r: &vdisk_rados::ReadResult| -> Option<u64> {
            match r {
                vdisk_rados::ReadResult::Xattr(Some(bytes)) if bytes.len() == 8 => {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(bytes);
                    Some(u64::from_le_bytes(b))
                }
                _ => None,
            }
        };
        let size = parse_u64(&results[0]).ok_or_else(|| RbdError::ImageNotFound(name.into()))?;
        let object_size =
            parse_u64(&results[1]).ok_or_else(|| RbdError::ImageNotFound(name.into()))?;
        Ok(Image {
            cluster: cluster.clone(),
            name: name.to_string(),
            size,
            striper: Striper::new(object_size),
            object_names: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// Deletes an image: its data objects, its header, and any
    /// sidecar objects layered crates store next to the header
    /// (`rbd_header.<name>.<suffix>`, e.g. the `.luks` encryption
    /// header) — an encrypted image removed here no longer strands its
    /// crypt header in the cluster.
    ///
    /// # Errors
    ///
    /// Returns [`RbdError::ImageNotFound`] if it does not exist.
    pub fn remove(cluster: &Cluster, name: &str) -> Result<()> {
        // Drain the shard work queues first: an in-flight queued write
        // could otherwise create a data object after the listing below
        // and survive the removal.
        cluster.flush();
        let header = Self::header_object(name);
        if !cluster.object_exists(&header) {
            return Err(RbdError::ImageNotFound(name.to_string()));
        }
        let data_prefix = format!("rbd_data.{name}.");
        let sidecar_prefix = format!("{header}.");
        for object in cluster.list_objects() {
            if object.starts_with(&data_prefix)
                || object.starts_with(&sidecar_prefix)
                || object == header
            {
                let mut tx = Transaction::new(object);
                tx.delete();
                cluster.execute(tx)?;
            }
        }
        Ok(())
    }

    /// The image name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logical size in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Object size used for striping.
    #[must_use]
    pub fn object_size(&self) -> u64 {
        self.striper.object_size()
    }

    /// The striping calculator.
    #[must_use]
    pub fn striper(&self) -> Striper {
        self.striper
    }

    /// The underlying cluster handle.
    #[must_use]
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Image metadata.
    ///
    /// # Errors
    ///
    /// Returns [`RbdError::Rados`] if the header vanished.
    pub fn stat(&self) -> Result<ImageStat> {
        let prefix = format!("rbd_data.{}.", self.name);
        let objects_written = self
            .cluster
            .list_objects()
            .iter()
            .filter(|o| o.starts_with(&prefix))
            .count();
        Ok(ImageStat {
            size: self.size,
            object_size: self.striper.object_size(),
            objects_written,
        })
    }

    pub(crate) fn check_bounds(&self, offset: u64, len: u64) -> Result<()> {
        let end = offset.checked_add(len).ok_or(RbdError::OutOfBounds {
            offset: u64::MAX,
            size: self.size,
        })?;
        if end > self.size {
            return Err(RbdError::OutOfBounds {
                offset: end,
                size: self.size,
            });
        }
        Ok(())
    }

    /// Writes raw bytes (no encryption) and returns the IO's cost
    /// plan: a borrowing convenience wrapper that copies `data` once
    /// into an owned buffer and delegates to [`Image::write_owned`].
    /// Hot paths that can hand over the buffer should prefer
    /// `write_owned` (zero-copy) or a [`crate::IoQueue`].
    ///
    /// # Errors
    ///
    /// Returns [`RbdError::OutOfBounds`] if the write exceeds the image.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> Result<Plan> {
        self.write_owned(offset, data.to_vec())
    }

    /// Writes an owned buffer and returns the IO's cost plan —
    /// submit-then-wait over the cluster's shard work queues (idle
    /// shards are served inline). The request is striped up front and
    /// every touched object's transaction receives a **slice view of
    /// the submitted buffer** (one shared allocation, zero copies),
    /// dispatched as one batch (`Plan::par`).
    ///
    /// # Errors
    ///
    /// Returns [`RbdError::OutOfBounds`] if the write exceeds the image.
    pub fn write_owned(&self, offset: u64, data: Vec<u8>) -> Result<Plan> {
        if data.is_empty() {
            self.check_bounds(offset, 0)?;
            return Ok(Plan::Noop);
        }
        let txs = self.write_txs(offset, data)?;
        Ok(self.cluster.execute_batch(txs)?)
    }

    /// Submits an owned-buffer write to the shard work queues and
    /// returns its ticket without waiting — the raw asynchronous write
    /// primitive behind [`crate::IoQueue`].
    ///
    /// # Errors
    ///
    /// Returns [`RbdError::OutOfBounds`] if the write exceeds the image.
    pub fn submit_write(&self, offset: u64, data: Vec<u8>) -> Result<ApplyTicket> {
        let txs = self.write_txs(offset, data)?;
        Ok(self.cluster.submit_batch(txs)?)
    }

    /// Builds the striped transactions of an owned-buffer write: one
    /// per touched object, each holding a slice view of the one shared
    /// request allocation.
    fn write_txs(&self, offset: u64, data: Vec<u8>) -> Result<Vec<Transaction>> {
        self.check_bounds(offset, data.len() as u64)?;
        let shared = SharedBuf::from_vec(data);
        Ok(self
            .striper
            .map(offset, shared.len() as u64)
            .into_iter()
            .map(|extent| {
                let mut tx = Transaction::new(self.object_name(extent.object_no));
                tx.write(
                    extent.offset,
                    shared.slice(
                        extent.buf_offset as usize..(extent.buf_offset + extent.len) as usize,
                    ),
                );
                tx
            })
            .collect())
    }

    /// Reads raw bytes from the image head into `buf`; unwritten space
    /// reads as zeros. Returns the IO's cost plan.
    ///
    /// # Errors
    ///
    /// Returns [`RbdError::OutOfBounds`] if the read exceeds the image.
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<Plan> {
        self.read_common(None, offset, buf)
    }

    /// Reads raw bytes as of a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`RbdError::OutOfBounds`] if the read exceeds the image.
    pub fn read_at_snap(&self, snap: SnapId, offset: u64, buf: &mut [u8]) -> Result<Plan> {
        self.read_common(Some(snap), offset, buf)
    }

    fn read_common(&self, snap: Option<SnapId>, offset: u64, buf: &mut [u8]) -> Result<Plan> {
        let (requests, extents) = self.read_requests(offset, buf.len() as u64)?;
        let (results, plan) = self.cluster.read_batch(snap, requests)?;
        Self::assemble_read(&extents, &results, buf);
        Ok(plan)
    }

    /// Submits a vectored read of `[offset, offset + len)` and returns
    /// its ticket plus the extent map needed to reassemble the payload
    /// (see [`Image::assemble_read`]) — the raw asynchronous read
    /// primitive behind [`crate::IoQueue`]. The whole request is
    /// mapped up front; every extent rides one batched submission.
    pub(crate) fn submit_read(
        &self,
        snap: Option<SnapId>,
        offset: u64,
        len: u64,
    ) -> Result<(ReadTicket, Vec<ObjectExtent>)> {
        let (requests, extents) = self.read_requests(offset, len)?;
        Ok((self.cluster.submit_read_batch(snap, requests), extents))
    }

    /// Maps a read onto its per-object requests and extent plan.
    #[allow(clippy::type_complexity)]
    fn read_requests(
        &self,
        offset: u64,
        len: u64,
    ) -> Result<(Vec<ObjectReads>, Vec<ObjectExtent>)> {
        self.check_bounds(offset, len)?;
        let extents = self.striper.map(offset, len);
        let requests: Vec<ObjectReads> = extents
            .iter()
            .map(|extent| {
                ObjectReads::new(
                    self.object_name(extent.object_no),
                    vec![ReadOp::Read {
                        offset: extent.offset,
                        len: extent.len,
                    }],
                )
            })
            .collect();
        Ok((requests, extents))
    }

    /// Scatters one completed read submission's per-extent results
    /// into the request buffer, zero-filling sparse holes (absent
    /// objects answer from the OSD index without disk IO).
    pub(crate) fn assemble_read(
        extents: &[ObjectExtent],
        results: &[Option<Vec<vdisk_rados::ReadResult>>],
        buf: &mut [u8],
    ) {
        for (extent, result) in extents.iter().zip(results) {
            let out =
                &mut buf[extent.buf_offset as usize..(extent.buf_offset + extent.len) as usize];
            match result {
                Some(results) => out.copy_from_slice(results[0].as_data()),
                None => out.fill(0),
            }
        }
    }

    /// Takes a named image snapshot. All data objects written after
    /// this point copy-on-write their pre-snapshot contents.
    ///
    /// # Errors
    ///
    /// Returns [`RbdError::SnapshotExists`] if the name is taken.
    pub fn snap_create(&self, snap_name: &str) -> Result<SnapId> {
        if self.snap_id(snap_name)?.is_some() {
            return Err(RbdError::SnapshotExists(snap_name.to_string()));
        }
        let id = self.cluster.create_snap();
        let mut tx = Transaction::new(Self::header_object(&self.name));
        tx.omap_set(vec![(
            format!("snap.{snap_name}").into_bytes(),
            id.0.to_le_bytes().to_vec(),
        )]);
        self.cluster.execute(tx)?;
        Ok(id)
    }

    /// Looks up a snapshot id by name.
    ///
    /// # Errors
    ///
    /// Returns [`RbdError::Rados`] if the header read fails.
    pub fn snap_id(&self, snap_name: &str) -> Result<Option<SnapId>> {
        let key = format!("snap.{snap_name}").into_bytes();
        let (results, _) = self.cluster.read(
            &Self::header_object(&self.name),
            None,
            &[ReadOp::OmapGetKeys(vec![key])],
        )?;
        let entries = results[0].as_omap();
        Ok(entries.first().map(|(_, v)| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&v[..8]);
            SnapId(u64::from_le_bytes(b))
        }))
    }

    /// Lists snapshots (sorted by name).
    ///
    /// # Errors
    ///
    /// Returns [`RbdError::Rados`] if the header read fails.
    pub fn snapshots(&self) -> Result<Vec<SnapshotInfo>> {
        let (results, _) = self.cluster.read(
            &Self::header_object(&self.name),
            None,
            &[ReadOp::OmapGetRange {
                start: b"snap.".to_vec(),
                end: b"snap.\xff".to_vec(),
            }],
        )?;
        Ok(results[0]
            .as_omap()
            .iter()
            .map(|(k, v)| {
                let name = String::from_utf8_lossy(&k[b"snap.".len()..]).into_owned();
                let mut b = [0u8; 8];
                b.copy_from_slice(&v[..8]);
                SnapshotInfo {
                    name,
                    id: SnapId(u64::from_le_bytes(b)),
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Cluster, Image) {
        let cluster = Cluster::builder().build();
        let image = Image::create(&cluster, "test", 64 << 20).unwrap();
        (cluster, image)
    }

    #[test]
    fn create_open_round_trip() {
        let (cluster, image) = setup();
        assert_eq!(image.size(), 64 << 20);
        let reopened = Image::open(&cluster, "test").unwrap();
        assert_eq!(reopened.size(), 64 << 20);
        assert_eq!(reopened.object_size(), DEFAULT_OBJECT_SIZE);
    }

    #[test]
    fn create_twice_fails() {
        let (cluster, _image) = setup();
        assert_eq!(
            Image::create(&cluster, "test", 1 << 20).unwrap_err(),
            RbdError::ImageExists("test".into())
        );
    }

    #[test]
    fn open_missing_fails() {
        let cluster = Cluster::builder().build();
        assert_eq!(
            Image::open(&cluster, "ghost").unwrap_err(),
            RbdError::ImageNotFound("ghost".into())
        );
    }

    #[test]
    fn write_read_round_trip_across_objects() {
        let (_cluster, image) = setup();
        // Spans the object 0 / object 1 boundary.
        let offset = DEFAULT_OBJECT_SIZE - 2048;
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        image.write_at(offset, &data).unwrap();
        let mut buf = vec![0u8; 8192];
        let plan = image.read_at(offset, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert!(plan.op_count() > 0);
        assert_eq!(image.stat().unwrap().objects_written, 2);
    }

    #[test]
    fn unwritten_space_reads_zero() {
        let (_cluster, image) = setup();
        image.write_at(0, b"x").unwrap();
        let mut buf = vec![0xAAu8; 4096];
        image.read_at(8 << 20, &mut buf).unwrap();
        assert_eq!(buf, vec![0u8; 4096]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let (_cluster, image) = setup();
        let size = image.size();
        assert!(matches!(
            image.write_at(size - 1, &[0, 0]),
            Err(RbdError::OutOfBounds { .. })
        ));
        let mut buf = [0u8; 2];
        assert!(matches!(
            image.read_at(size - 1, &mut buf),
            Err(RbdError::OutOfBounds { .. })
        ));
        // Exactly at the end is fine.
        image.write_at(size - 2, &[1, 2]).unwrap();
    }

    #[test]
    fn empty_writes_are_noops() {
        let (cluster, image) = setup();
        let before = cluster.exec_stats();
        assert_eq!(image.write_at(0, &[]).unwrap(), Plan::Noop);
        assert_eq!(image.write_owned(10, Vec::new()).unwrap(), Plan::Noop);
        assert_eq!(
            cluster.exec_stats(),
            before,
            "an empty write must not reach the cluster"
        );
        // But bounds still apply.
        assert!(image.write_owned(image.size() + 1, Vec::new()).is_err());
    }

    #[test]
    fn snapshots_freeze_data() {
        let (_cluster, image) = setup();
        image.write_at(0, b"before").unwrap();
        let snap = image.snap_create("s1").unwrap();
        image.write_at(0, b"after!").unwrap();

        let mut head = vec![0u8; 6];
        image.read_at(0, &mut head).unwrap();
        assert_eq!(&head, b"after!");

        let mut old = vec![0u8; 6];
        image.read_at_snap(snap, 0, &mut old).unwrap();
        assert_eq!(&old, b"before");
    }

    #[test]
    fn snapshot_names_resolve() {
        let (_cluster, image) = setup();
        image.write_at(0, b"x").unwrap();
        let s1 = image.snap_create("alpha").unwrap();
        let s2 = image.snap_create("beta").unwrap();
        assert_eq!(image.snap_id("alpha").unwrap(), Some(s1));
        assert_eq!(image.snap_id("missing").unwrap(), None);
        let all = image.snapshots().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].name, "alpha");
        assert_eq!(all[1].id, s2);
    }

    #[test]
    fn duplicate_snapshot_name_rejected() {
        let (_cluster, image) = setup();
        image.snap_create("s").unwrap();
        assert_eq!(
            image.snap_create("s").unwrap_err(),
            RbdError::SnapshotExists("s".into())
        );
    }

    #[test]
    fn remove_deletes_everything() {
        let (cluster, image) = setup();
        image.write_at(0, &[1u8; 4096]).unwrap();
        image.write_at(20 << 20, &[2u8; 4096]).unwrap();
        Image::remove(&cluster, "test").unwrap();
        assert!(cluster.list_objects().is_empty());
        assert!(Image::open(&cluster, "test").is_err());
        assert!(Image::remove(&cluster, "test").is_err());
    }

    #[test]
    fn remove_deletes_sidecar_headers() {
        // Regression: the encryption layer stores its LUKS-style header
        // as `rbd_header.<name>.luks`; remove used to match only the
        // data prefix and the rbd header, stranding the crypt header.
        let (cluster, image) = setup();
        image.write_at(0, &[1u8; 512]).unwrap();
        let mut tx = Transaction::new("rbd_header.test.luks");
        tx.write(0, vec![7u8; 64]);
        cluster.execute(tx).unwrap();
        Image::remove(&cluster, "test").unwrap();
        assert!(
            cluster.list_objects().is_empty(),
            "sidecar headers must not be stranded"
        );
    }

    #[test]
    fn sparse_stat_counts_objects() {
        let (_cluster, image) = setup();
        assert_eq!(image.stat().unwrap().objects_written, 0);
        image.write_at(0, &[0u8; 16]).unwrap();
        image.write_at(33 << 20, &[0u8; 16]).unwrap();
        assert_eq!(image.stat().unwrap().objects_written, 2);
    }

    #[test]
    fn snapshot_of_unwritten_object_reads_zero() {
        let (_cluster, image) = setup();
        image.write_at(0, b"first").unwrap();
        let snap = image.snap_create("s").unwrap();
        // Object 2 written only after the snapshot.
        image.write_at(8 << 20, b"later").unwrap();
        let mut buf = vec![0xFFu8; 5];
        image.read_at_snap(snap, 8 << 20, &mut buf).unwrap();
        assert_eq!(buf, vec![0u8; 5]);
    }
}
