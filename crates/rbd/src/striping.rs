//! LBA→object striping arithmetic.

/// One object-local piece of a logical IO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectExtent {
    /// Object index within the image.
    pub object_no: u64,
    /// Byte offset within the object.
    pub offset: u64,
    /// Length of this piece in bytes.
    pub len: u64,
    /// Offset of this piece within the logical IO's buffer.
    pub buf_offset: u64,
}

/// Splits logical extents into object extents (stripe unit = object
/// size, as in default RBD striping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Striper {
    object_size: u64,
}

impl Striper {
    /// Creates a striper.
    ///
    /// # Panics
    ///
    /// Panics if `object_size` is zero.
    #[must_use]
    pub fn new(object_size: u64) -> Self {
        assert!(object_size > 0, "object size must be positive");
        Striper { object_size }
    }

    /// The object size.
    #[must_use]
    pub fn object_size(&self) -> u64 {
        self.object_size
    }

    /// Maps `[offset, offset + len)` to object extents, in ascending
    /// object order.
    #[must_use]
    pub fn map(&self, offset: u64, len: u64) -> Vec<ObjectExtent> {
        let mut extents = Vec::new();
        let mut remaining = len;
        let mut cursor = offset;
        let mut buf_offset = 0u64;
        while remaining > 0 {
            let object_no = cursor / self.object_size;
            let in_object = cursor % self.object_size;
            let take = remaining.min(self.object_size - in_object);
            extents.push(ObjectExtent {
                object_no,
                offset: in_object,
                len: take,
                buf_offset,
            });
            cursor += take;
            buf_offset += take;
            remaining -= take;
        }
        extents
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB4: u64 = 4 << 20;

    #[test]
    fn io_inside_one_object() {
        let s = Striper::new(MB4);
        let extents = s.map(4096, 8192);
        assert_eq!(
            extents,
            vec![ObjectExtent {
                object_no: 0,
                offset: 4096,
                len: 8192,
                buf_offset: 0
            }]
        );
    }

    #[test]
    fn io_spanning_two_objects() {
        let s = Striper::new(MB4);
        let extents = s.map(MB4 - 4096, 12288);
        assert_eq!(extents.len(), 2);
        assert_eq!(extents[0].object_no, 0);
        assert_eq!(extents[0].offset, MB4 - 4096);
        assert_eq!(extents[0].len, 4096);
        assert_eq!(extents[0].buf_offset, 0);
        assert_eq!(extents[1].object_no, 1);
        assert_eq!(extents[1].offset, 0);
        assert_eq!(extents[1].len, 8192);
        assert_eq!(extents[1].buf_offset, 4096);
    }

    #[test]
    fn whole_object_io() {
        let s = Striper::new(MB4);
        let extents = s.map(3 * MB4, MB4);
        assert_eq!(extents.len(), 1);
        assert_eq!(extents[0].object_no, 3);
        assert_eq!(extents[0].offset, 0);
        assert_eq!(extents[0].len, MB4);
    }

    #[test]
    fn multi_object_lengths_sum() {
        let s = Striper::new(MB4);
        let extents = s.map(1_000_000, 10_000_000);
        let total: u64 = extents.iter().map(|e| e.len).sum();
        assert_eq!(total, 10_000_000);
        // buf offsets are contiguous.
        let mut expected = 0;
        for e in &extents {
            assert_eq!(e.buf_offset, expected);
            expected += e.len;
        }
        // object numbers ascend.
        assert!(extents.windows(2).all(|w| w[0].object_no < w[1].object_no));
    }

    #[test]
    fn zero_length_maps_to_nothing() {
        let s = Striper::new(MB4);
        assert!(s.map(123, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "object size must be positive")]
    fn zero_object_size_rejected() {
        let _ = Striper::new(0);
    }
}
