//! The virtual-disk layer (Ceph RBD analog): an LBA-addressable block
//! device striped over 4 MB RADOS objects.
//!
//! libRBD "maps each LBA to a specific OSD node by breaking the LBA
//! space into objects (typically 4 MB in size)" (§2.4). This crate
//! reproduces that mapping plus image lifecycle (create/open/remove),
//! image-level snapshots, and the raw read/write path the encryption
//! layer in `vdisk-core` builds on.
//!
//! # Example
//!
//! ```
//! use vdisk_rados::Cluster;
//! use vdisk_rbd::Image;
//!
//! # fn main() -> Result<(), vdisk_rbd::RbdError> {
//! let cluster = Cluster::builder().build();
//! let image = Image::create(&cluster, "vm-1", 64 << 20)?;
//! image.write_at(4096, b"boot data")?;
//! let mut buf = vec![0u8; 9];
//! image.read_at(4096, &mut buf)?;
//! assert_eq!(&buf, b"boot data");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod image;
mod queue;
mod striping;

pub use image::{Image, ImageStat, SnapshotInfo};
pub use queue::{Completion, IoOp, IoPayload, IoQueue, IoResult};
pub use striping::{ObjectExtent, Striper};

/// Internal plumbing for queues layered over this crate's (the
/// encrypted queue in `vdisk-core`): the shared submission-tracking /
/// reap engine. Not part of the supported API surface.
#[doc(hidden)]
pub mod queue_engine {
    pub use crate::queue::{PendingOp, ReapQueue};
}

use std::error::Error as StdError;
use std::fmt;

/// Default object size: 4 MB, Ceph's default (§3.2).
pub const DEFAULT_OBJECT_SIZE: u64 = 4 << 20;

/// Errors surfaced by the image layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RbdError {
    /// Image already exists on create.
    ImageExists(String),
    /// Image not found on open.
    ImageNotFound(String),
    /// IO past the end of the image.
    OutOfBounds {
        /// Requested end offset.
        offset: u64,
        /// Image size.
        size: u64,
    },
    /// Snapshot name not found.
    SnapshotNotFound(String),
    /// Snapshot name already taken.
    SnapshotExists(String),
    /// An error bubbled up from the object store.
    Rados(vdisk_rados::RadosError),
}

impl fmt::Display for RbdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RbdError::ImageExists(name) => write!(f, "image already exists: {name}"),
            RbdError::ImageNotFound(name) => write!(f, "image not found: {name}"),
            RbdError::OutOfBounds { offset, size } => {
                write!(f, "io reaches offset {offset} past image size {size}")
            }
            RbdError::SnapshotNotFound(name) => write!(f, "snapshot not found: {name}"),
            RbdError::SnapshotExists(name) => write!(f, "snapshot already exists: {name}"),
            RbdError::Rados(e) => write!(f, "rados: {e}"),
        }
    }
}

impl StdError for RbdError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            RbdError::Rados(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vdisk_rados::RadosError> for RbdError {
    fn from(e: vdisk_rados::RadosError) -> Self {
        RbdError::Rados(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RbdError>;
