//! The aio-style submission-queue IO API (librbd/io_uring-shaped).
//!
//! An [`IoQueue`] wraps an [`Image`] and accepts **owned-buffer**
//! operations: [`IoOp::Write`] hands its `Vec<u8>` straight down the
//! stack (each touched object's transaction receives a slice view of
//! the submitted allocation — no request copy), [`IoOp::Read`] returns
//! its payload in the completion. Submissions return immediately with
//! a [`Completion`] token; results are reaped with [`IoQueue::poll`]
//! (non-blocking), [`IoQueue::wait`] (blocks for at least one
//! completion) or [`IoQueue::fence`] (full barrier).
//!
//! Keeping many operations in flight is the point: the paper's
//! bandwidth argument (fio at queue depth 32, §3.3) depends on the
//! client overlapping IOs against the distributed store, and the
//! cluster's per-shard work queues let ops from different submissions
//! interleave on the shard workers.
//!
//! **Ordering**: operations touching the same object are applied in
//! submission order (per-shard FIFO, single consumer); operations on
//! disjoint objects may complete in any order. A
//! [`fence`](IoQueue::fence) orders everything before it against
//! everything after it.
//!
//! # Example
//!
//! ```
//! use vdisk_rados::Cluster;
//! use vdisk_rbd::{Image, IoOp, IoQueue};
//!
//! # fn main() -> Result<(), vdisk_rbd::RbdError> {
//! let cluster = Cluster::builder().build();
//! let image = Image::create(&cluster, "vm-aio", 64 << 20)?;
//! let mut queue = IoQueue::new(&image);
//!
//! queue.submit(IoOp::Write { offset: 0, data: b"hello".to_vec() })?;
//! let read = queue.submit(IoOp::Read { offset: 0, len: 5 })?;
//! let done = queue.fence()?; // barrier: both ops complete
//! assert_eq!(done.len(), 2);
//! assert_eq!(done[1].completion, read);
//! assert_eq!(done[1].payload.data(), b"hello");
//! # Ok(())
//! # }
//! ```

use crate::image::Image;
use crate::striping::ObjectExtent;
use crate::Result;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use vdisk_rados::{ApplyTicket, Doorbell, ExecStats, ReadTicket, SharedBuf, Transaction};
use vdisk_sim::Plan;

/// One submitted operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoOp {
    /// Write an owned buffer at `offset` (zero-copy: transactions
    /// receive slice views of this allocation).
    Write {
        /// Byte offset within the image.
        offset: u64,
        /// The buffer to write; ownership moves into the submission.
        data: Vec<u8>,
    },
    /// Gather-write: the buffers are written back to back starting at
    /// `offset`, each handed down zero-copy.
    Writev {
        /// Byte offset within the image.
        offset: u64,
        /// Buffers written consecutively.
        buffers: Vec<Vec<u8>>,
    },
    /// Read `len` bytes at `offset`; the completion carries the
    /// payload.
    Read {
        /// Byte offset within the image.
        offset: u64,
        /// Bytes to read.
        len: u64,
    },
    /// Scatter-read: reads `lens.iter().sum()` contiguous bytes at
    /// `offset` and returns them as one segment per requested length.
    Readv {
        /// Byte offset within the image.
        offset: u64,
        /// Segment lengths, read consecutively.
        lens: Vec<u64>,
    },
}

/// Token identifying a submitted operation; returned again in its
/// [`IoResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Completion(u64);

impl Completion {
    /// The submission's sequence number (monotonic per queue).
    #[must_use]
    pub fn id(self) -> u64 {
        self.0
    }

    /// Builds a token from a sequence number — for queue
    /// implementations layering over this one (e.g. the encrypted
    /// queue in `vdisk-core`); tokens carry no authority.
    #[must_use]
    pub fn from_id(id: u64) -> Completion {
        Completion(id)
    }
}

/// Payload carried by a completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoPayload {
    /// Writes complete without payload.
    None,
    /// A [`IoOp::Read`]'s bytes.
    Data(Vec<u8>),
    /// A [`IoOp::Readv`]'s segments, one per requested length.
    Segments(Vec<Vec<u8>>),
}

impl IoPayload {
    /// Unwraps a read payload.
    ///
    /// # Panics
    ///
    /// Panics if the completion carries no single data payload.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        match self {
            IoPayload::Data(d) => d,
            // vdisk-lint: allow(hot-path-panic) reason="documented panicking accessor; callers match the payload kind to the op they submitted"
            other => panic!("expected data payload, got {other:?}"),
        }
    }

    /// Packs a completed contiguous read: the whole buffer for a
    /// plain read, or one segment per requested length for a scatter
    /// read. Shared by this queue and the encrypted queue in
    /// `vdisk-core` so the split logic lives in one place.
    ///
    /// # Panics
    ///
    /// Panics if the segment lengths exceed the buffer.
    #[must_use]
    pub fn from_read(data: Vec<u8>, split: Option<Vec<u64>>) -> IoPayload {
        match split {
            None => IoPayload::Data(data),
            Some(lens) => {
                let mut segments = Vec::with_capacity(lens.len());
                let mut cursor = 0usize;
                for len in lens {
                    // vdisk-lint: allow(hot-path-index) reason="documented panicking packer: segment lengths exceeding the buffer are a caller bug"
                    segments.push(data[cursor..cursor + len as usize].to_vec());
                    cursor += len as usize;
                }
                IoPayload::Segments(segments)
            }
        }
    }

    /// Unwraps scatter-read segments.
    ///
    /// # Panics
    ///
    /// Panics if the completion carries no segments.
    #[must_use]
    pub fn segments(&self) -> &[Vec<u8>] {
        match self {
            IoPayload::Segments(s) => s,
            // vdisk-lint: allow(hot-path-panic) reason="documented panicking accessor; callers match the payload kind to the op they submitted"
            other => panic!("expected segments payload, got {other:?}"),
        }
    }
}

/// One reaped completion: the op's cost plan, its payload (for reads),
/// and the exact [`ExecStats`] delta it contributed.
#[derive(Debug)]
pub struct IoResult {
    /// The token returned at submission.
    pub completion: Completion,
    /// The IO's cost plan (same shape the synchronous API returns).
    pub plan: Plan,
    /// Read payload, if any.
    pub payload: IoPayload,
    /// Exact per-op operation counts (transactions, batches, read ops,
    /// this submission's shard fanout). Cluster-wide high-water marks
    /// are not per-op quantities and stay zero here.
    pub stats: ExecStats,
}

/// Per-op pending state usable with [`ReapQueue`]: at submission the
/// engine subscribes each op's completion signal(s) to the queue's
/// [`Doorbell`], so shard workers ring the reaper as parts land.
#[doc(hidden)]
pub trait PendingOp {
    /// Subscribes the op's completion signal(s) to `bell`.
    fn subscribe(&self, bell: &Arc<Doorbell>);
}

/// The submission-tracking/reap engine shared by this queue and the
/// encrypted queue in `vdisk-core`, generic over the per-op pending
/// state: completion-id allotment, the poll/wait/fence scan order, the
/// parked (zero-spin) blocking protocol, and the error-retention rule
/// (a failed advance or finalize consumes exactly one op; completions
/// already finalized stay staged and are delivered by the next reap
/// call) live in exactly one place.
///
/// **Completion model**: every pushed op subscribes the queue's
/// [`Doorbell`] (see [`PendingOp`]); shard workers ring it as each
/// part of a submission completes. A blocking reap snapshots the
/// bell's generation, runs `advance` over the candidate op(s) — which
/// may make incremental progress, e.g. decrypting extents whose data
/// has landed — and, if nothing finished, parks in
/// [`Doorbell::wait_past`]. Rings after the snapshot bump the
/// generation, so completions can never be slept through, and an idle
/// wait burns no CPU.
#[doc(hidden)]
pub struct ReapQueue<P> {
    pending: VecDeque<(u64, P)>,
    /// Finalized results not yet delivered (see the module docs on
    /// reap errors).
    completed: Vec<IoResult>,
    next_id: u64,
    /// The queue's doorbell: every pending op is subscribed at push
    /// time, and shard workers ring it as each part completes.
    bell: Arc<Doorbell>,
    /// Times a blocking reap found nothing finished and parked — the
    /// observable proof that waiting is event-driven, not a spin (a
    /// busy-wait implementation would count thousands of passes per
    /// delayed completion; parking counts one per wakeup).
    idle_passes: u64,
    /// Where the next [`ReapQueue::wait_any`] pass starts its advance
    /// scan; incremented every pass so service order rotates over the
    /// pending set instead of always favouring the oldest submission.
    scan_start: usize,
    /// Completion ids of ops consumed by a reap error and not yet
    /// collected via [`ReapQueue::take_failed`]. Runtimes layered
    /// above (the multi-tenant arbiter in `vdisk-core`) account
    /// in-flight budget per op, so they need to know exactly which
    /// ops died with an error to refund their slots.
    failed: Vec<u64>,
}

impl<P> Default for ReapQueue<P> {
    fn default() -> Self {
        ReapQueue {
            pending: VecDeque::new(),
            completed: Vec::new(),
            next_id: 0,
            bell: Doorbell::new(),
            idle_passes: 0,
            scan_start: 0,
            failed: Vec::new(),
        }
    }
}

impl<P: PendingOp> ReapQueue<P> {
    /// Tracks a newly submitted op, subscribing it to the queue's
    /// doorbell and returning its completion token.
    pub fn push(&mut self, state: P) -> Completion {
        state.subscribe(&self.bell);
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push_back((id, state));
        Completion(id)
    }
}

impl<P> ReapQueue<P> {
    /// Ops submitted and not yet reaped.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// How many times a blocking reap (`wait`/`wait_any`/`fence`)
    /// found nothing finished and parked on the doorbell. Stays ~0
    /// for completions that land before the reap; increments once per
    /// park-and-wakeup, never per spin iteration.
    #[must_use]
    pub fn idle_passes(&self) -> u64 {
        self.idle_passes
    }

    /// The queue's completion doorbell. Shard workers ring it as parts
    /// of submissions land; runtimes layered above (the multi-tenant
    /// arbiter in `vdisk-core`) ring it to wake a reaper parked here
    /// when a scheduling decision — not a completion — changes what
    /// the owning thread should do next.
    #[must_use]
    pub fn doorbell(&self) -> Arc<Doorbell> {
        Arc::clone(&self.bell)
    }

    /// Drains the completion ids of ops consumed by reap errors since
    /// the last call (each reap error consumes exactly one op — see
    /// the error-retention rule in the type docs). A runtime that
    /// accounts per-op budget calls this after a failed reap to refund
    /// exactly the ops that died.
    pub fn take_failed(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.failed)
    }

    /// Reaps every op `advance` reports finished, without blocking, in
    /// submission order. `advance` may make incremental progress on an
    /// op (it is called repeatedly and must be idempotent once the op
    /// has finished).
    ///
    /// # Errors
    ///
    /// Propagates the first advance or finalize error; that op is
    /// consumed with it, while completions already finalized stay
    /// staged for the next reap call.
    pub fn poll<E>(
        &mut self,
        advance: &mut impl FnMut(&mut P) -> std::result::Result<bool, E>,
        finalize: &mut impl FnMut(Completion, P) -> std::result::Result<IoResult, E>,
    ) -> std::result::Result<Vec<IoResult>, E> {
        let mut i = 0;
        while i < self.pending.len() {
            // vdisk-lint: allow(hot-path-index) reason="loop condition keeps i < pending.len(), and removals restart the check"
            match advance(&mut self.pending[i].1) {
                Ok(true) => {
                    // vdisk-lint: allow(hot-path-panic) reason="i < pending.len() per the loop condition, so remove returns Some"
                    let (id, state) = self.pending.remove(i).expect("index in range");
                    match finalize(Completion(id), state) {
                        Ok(result) => self.completed.push(result),
                        Err(e) => {
                            self.failed.push(id);
                            return Err(e);
                        }
                    }
                }
                Ok(false) => i += 1,
                Err(e) => {
                    // vdisk-lint: allow(hot-path-panic) reason="i < pending.len() per the loop condition, so remove returns Some"
                    let (id, _) = self.pending.remove(i).expect("index in range");
                    self.failed.push(id);
                    return Err(e);
                }
            }
        }
        Ok(std::mem::take(&mut self.completed))
    }

    /// Parks until the oldest outstanding op finishes, finalizes it,
    /// then reaps everything else finished. Empty when idle.
    ///
    /// # Errors
    ///
    /// As [`ReapQueue::poll`].
    pub fn wait<E>(
        &mut self,
        advance: &mut impl FnMut(&mut P) -> std::result::Result<bool, E>,
        finalize: &mut impl FnMut(Completion, P) -> std::result::Result<IoResult, E>,
    ) -> std::result::Result<Vec<IoResult>, E> {
        if !self.pending.is_empty() {
            self.park_until_front_finishes(advance)?;
            // vdisk-lint: allow(hot-path-panic) reason="guarded by the is_empty check above; parking removes nothing"
            let (id, state) = self.pending.pop_front().expect("checked non-empty");
            match finalize(Completion(id), state) {
                Ok(result) => self.completed.push(result),
                Err(e) => {
                    self.failed.push(id);
                    return Err(e);
                }
            }
        }
        self.poll(advance, finalize)
    }

    /// Parks until **any** outstanding op is finished — not
    /// necessarily the oldest — then reaps everything finished. Where
    /// [`ReapQueue::wait`] parks on the head of the FIFO (head-of-line
    /// blocking when a slow op leads faster ones), this reaps
    /// completions out of submission order as soon as they land — the
    /// primitive a pipelined driver needs to keep its window full at
    /// high queue depth. Empty when idle.
    ///
    /// # Errors
    ///
    /// As [`ReapQueue::poll`].
    pub fn wait_any<E>(
        &mut self,
        advance: &mut impl FnMut(&mut P) -> std::result::Result<bool, E>,
        finalize: &mut impl FnMut(Completion, P) -> std::result::Result<IoResult, E>,
    ) -> std::result::Result<Vec<IoResult>, E> {
        if self.pending.is_empty() {
            return Ok(std::mem::take(&mut self.completed));
        }
        loop {
            let seen = self.bell.generation();
            let mut any_finished = false;
            // Rotate the scan start each pass. `advance` may do real
            // work (an encrypted read decrypts extents as they land),
            // so a fixed submission-order scan would service a hot
            // early ticket first on every pass while a fully-landed
            // later ticket waits behind that work indefinitely.
            let len = self.pending.len();
            let start = self.scan_start % len;
            self.scan_start = self.scan_start.wrapping_add(1);
            for step in 0..len {
                let i = (start + step) % len;
                // vdisk-lint: allow(hot-path-index) reason="i is reduced modulo pending.len(), and nothing is removed until the loop exits"
                match advance(&mut self.pending[i].1) {
                    Ok(finished) => any_finished |= finished,
                    Err(e) => {
                        // vdisk-lint: allow(hot-path-panic) reason="i is reduced modulo pending.len(), so remove returns Some"
                        let (id, _) = self.pending.remove(i).expect("index in range");
                        self.failed.push(id);
                        return Err(e);
                    }
                }
            }
            if any_finished {
                return self.poll(advance, finalize);
            }
            self.idle_passes += 1;
            self.bell.wait_past(seen);
        }
    }

    /// Finalizes every outstanding op in submission order — the full
    /// barrier — parking (never spinning) while ops are still in
    /// flight.
    ///
    /// # Errors
    ///
    /// As [`ReapQueue::poll`].
    pub fn fence<E>(
        &mut self,
        advance: &mut impl FnMut(&mut P) -> std::result::Result<bool, E>,
        finalize: &mut impl FnMut(Completion, P) -> std::result::Result<IoResult, E>,
    ) -> std::result::Result<Vec<IoResult>, E> {
        while !self.pending.is_empty() {
            self.park_until_front_finishes(advance)?;
            // vdisk-lint: allow(hot-path-panic) reason="guarded by the loop's is_empty check; parking removes nothing"
            let (id, state) = self.pending.pop_front().expect("checked non-empty");
            match finalize(Completion(id), state) {
                Ok(result) => self.completed.push(result),
                Err(e) => {
                    self.failed.push(id);
                    return Err(e);
                }
            }
        }
        Ok(std::mem::take(&mut self.completed))
    }

    /// The parked blocking protocol on the FIFO head: snapshot the
    /// bell, try to advance, park past the snapshot if unfinished.
    fn park_until_front_finishes<E>(
        &mut self,
        advance: &mut impl FnMut(&mut P) -> std::result::Result<bool, E>,
    ) -> std::result::Result<(), E> {
        loop {
            let seen = self.bell.generation();
            // vdisk-lint: allow(hot-path-index) reason="every caller checks pending is non-empty before parking on its front op"
            match advance(&mut self.pending[0].1) {
                Ok(true) => return Ok(()),
                Ok(false) => {
                    self.idle_passes += 1;
                    self.bell.wait_past(seen);
                }
                Err(e) => {
                    // vdisk-lint: allow(hot-path-panic) reason="every caller checks pending is non-empty before parking on its front op"
                    let (id, _) = self.pending.pop_front().expect("checked non-empty");
                    self.failed.push(id);
                    return Err(e);
                }
            }
        }
    }
}

enum PendingState {
    Write(ApplyTicket),
    Read {
        ticket: ReadTicket,
        extents: Vec<ObjectExtent>,
        len: u64,
        /// `Some` for scatter reads: the requested segment lengths.
        split: Option<Vec<u64>>,
    },
}

impl PendingState {
    fn is_complete(&self) -> bool {
        match self {
            PendingState::Write(ticket) => ticket.is_complete(),
            PendingState::Read { ticket, .. } => ticket.is_complete(),
        }
    }
}

impl PendingOp for PendingState {
    fn subscribe(&self, bell: &Arc<Doorbell>) {
        match self {
            PendingState::Write(ticket) => ticket.subscribe(bell),
            PendingState::Read { ticket, .. } => ticket.subscribe(bell),
        }
    }
}

/// An aio-style submission queue over one [`Image`]: owned buffers,
/// many IOs in flight, completions reaped by `poll`/`wait`/`fence`.
pub struct IoQueue {
    image: Image,
    reap: ReapQueue<PendingState>,
}

impl IoQueue {
    /// Opens a queue over `image` (cheap: the image handle is shared).
    #[must_use]
    pub fn new(image: &Image) -> IoQueue {
        IoQueue {
            image: image.clone(),
            reap: ReapQueue::default(),
        }
    }

    /// The image this queue drives.
    #[must_use]
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// Operations submitted and not yet reaped.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.reap.in_flight()
    }

    /// How many times a blocking reap (`wait`/`wait_any`/`fence`)
    /// parked on the queue's doorbell because nothing had finished
    /// yet. One count per park-and-wakeup — never per loop iteration —
    /// so it stays ~0 unless completions are genuinely outpaced, even
    /// while a wait blocks for a long time.
    #[must_use]
    pub fn idle_passes(&self) -> u64 {
        self.reap.idle_passes()
    }

    /// The queue's completion doorbell: shard workers ring it as parts
    /// of submissions land, and runtimes layered above ring it when a
    /// scheduling change should wake a parked owner.
    #[must_use]
    pub fn doorbell(&self) -> Arc<Doorbell> {
        self.reap.doorbell()
    }

    /// Drains the completion ids of operations consumed by reap errors
    /// since the last call (each failed reap consumes exactly one op).
    /// Runtimes that account per-op budget use this to refund exactly
    /// the ops that died.
    pub fn take_failed(&mut self) -> Vec<u64> {
        self.reap.take_failed()
    }

    /// Submits one operation; returns its completion token
    /// immediately, with the work in flight on the shard queues.
    ///
    /// # Errors
    ///
    /// Returns [`crate::RbdError::OutOfBounds`] if the op exceeds the
    /// image; nothing has been submitted then.
    pub fn submit(&mut self, op: IoOp) -> Result<Completion> {
        let state = match op {
            IoOp::Write { offset, data } => {
                PendingState::Write(self.image.submit_write(offset, data)?)
            }
            IoOp::Writev { offset, buffers } => {
                PendingState::Write(self.submit_writev(offset, buffers)?)
            }
            IoOp::Read { offset, len } => {
                let (ticket, extents) = self.image.submit_read(None, offset, len)?;
                PendingState::Read {
                    ticket,
                    extents,
                    len,
                    split: None,
                }
            }
            IoOp::Readv { offset, lens } => {
                let len = lens.iter().sum();
                let (ticket, extents) = self.image.submit_read(None, offset, len)?;
                PendingState::Read {
                    ticket,
                    extents,
                    len,
                    split: Some(lens),
                }
            }
        };
        Ok(self.reap.push(state))
    }

    /// Gather-write: one batch whose transactions view slices of every
    /// source buffer in place — an object spanning two buffers gets
    /// two write ops in its (single, atomic) transaction.
    fn submit_writev(&self, offset: u64, buffers: Vec<Vec<u8>>) -> Result<ApplyTicket> {
        let total: u64 = buffers.iter().map(|b| b.len() as u64).sum();
        self.image.check_bounds(offset, total)?;
        let striper = self.image.striper();
        let mut writes: BTreeMap<u64, Vec<(u64, SharedBuf)>> = BTreeMap::new();
        let mut cursor = offset;
        for buffer in buffers {
            let shared = SharedBuf::from_vec(buffer);
            for extent in striper.map(cursor, shared.len() as u64) {
                writes.entry(extent.object_no).or_default().push((
                    extent.offset,
                    shared.slice(
                        extent.buf_offset as usize..(extent.buf_offset + extent.len) as usize,
                    ),
                ));
            }
            cursor += shared.len() as u64;
        }
        let txs: Vec<Transaction> = writes
            .into_iter()
            .map(|(object_no, ops)| {
                let mut tx = Transaction::new(self.image.object_name(object_no));
                for (object_offset, slice) in ops {
                    tx.write(object_offset, slice);
                }
                tx
            })
            .collect();
        Ok(self.image.cluster().submit_batch(txs)?)
    }

    /// Reaps every already-finished operation without blocking, in
    /// submission order.
    ///
    /// # Errors
    ///
    /// Propagates store errors surfaced by completed reads. The failed
    /// op's result is consumed with the error; completions already
    /// finalized (in this pass or an earlier failed one) are retained
    /// and delivered by the next reap call.
    pub fn poll(&mut self) -> Result<Vec<IoResult>> {
        self.reap.poll(&mut Self::advance, &mut Self::finalize)
    }

    /// Blocks until at least one operation completes (the oldest
    /// outstanding one), then reaps everything finished. Returns an
    /// empty vector when nothing is in flight.
    ///
    /// # Errors
    ///
    /// As [`IoQueue::poll`].
    pub fn wait(&mut self) -> Result<Vec<IoResult>> {
        self.reap.wait(&mut Self::advance, &mut Self::finalize)
    }

    /// Blocks until **any** in-flight operation has completed — the
    /// first available one, not the oldest — then reaps everything
    /// finished. Avoids the head-of-line blocking of
    /// [`IoQueue::wait`]: a slow multi-object op at the queue head no
    /// longer delays reaping faster ops behind it, so a driver can
    /// resubmit and keep the pipeline full. Returns an empty vector
    /// when nothing is in flight.
    ///
    /// # Errors
    ///
    /// As [`IoQueue::poll`].
    pub fn wait_any(&mut self) -> Result<Vec<IoResult>> {
        self.reap.wait_any(&mut Self::advance, &mut Self::finalize)
    }

    /// Full barrier: blocks until **every** submitted operation has
    /// completed and returns their results in submission order.
    /// Everything submitted afterwards is ordered after everything
    /// reaped here.
    ///
    /// # Errors
    ///
    /// As [`IoQueue::poll`].
    pub fn fence(&mut self) -> Result<Vec<IoResult>> {
        self.reap.fence(&mut Self::advance, &mut Self::finalize)
    }

    fn advance(state: &mut PendingState) -> Result<bool> {
        Ok(state.is_complete())
    }

    fn finalize(completion: Completion, state: PendingState) -> Result<IoResult> {
        match state {
            PendingState::Write(ticket) => {
                let stats = ticket.stats_delta();
                Ok(IoResult {
                    completion,
                    plan: ticket.wait()?,
                    payload: IoPayload::None,
                    stats,
                })
            }
            PendingState::Read {
                ticket,
                extents,
                len,
                split,
            } => {
                let stats = ticket.stats_delta();
                let (results, plan) = ticket.wait()?;
                let mut buf = vec![0u8; len as usize];
                Image::assemble_read(&extents, &results, &mut buf);
                let payload = IoPayload::from_read(buf, split);
                Ok(IoResult {
                    completion,
                    plan,
                    payload,
                    stats,
                })
            }
        }
    }
}

impl std::fmt::Debug for IoQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IoQueue({}, {} in flight)",
            self.image.name(),
            self.reap.in_flight()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdisk_rados::Cluster;

    fn queue() -> IoQueue {
        let cluster = Cluster::builder().concurrent_apply(true).build();
        let image = Image::create(&cluster, "aio", 64 << 20).unwrap();
        IoQueue::new(&image)
    }

    #[test]
    fn write_then_read_round_trips_through_the_queue() {
        let mut q = queue();
        let w = q
            .submit(IoOp::Write {
                offset: 4096,
                data: vec![0xAB; 8192],
            })
            .unwrap();
        let r = q
            .submit(IoOp::Read {
                offset: 4096,
                len: 8192,
            })
            .unwrap();
        assert_eq!(q.in_flight(), 2);
        let done = q.fence().unwrap();
        assert_eq!(q.in_flight(), 0);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].completion, w);
        assert_eq!(done[0].payload, IoPayload::None);
        assert!(done[0].plan.op_count() > 0);
        assert_eq!(done[0].stats.transactions, 1);
        assert_eq!(done[1].completion, r);
        assert_eq!(done[1].payload.data(), &[0xAB; 8192][..]);
        assert_eq!(done[1].stats.read_ops, 1);
    }

    #[test]
    fn deep_queue_of_overlapping_writes_applies_in_order() {
        let mut q = queue();
        for round in 0..24u8 {
            q.submit(IoOp::Write {
                offset: 0,
                data: vec![round; 4096],
            })
            .unwrap();
        }
        let r = q.submit(IoOp::Read {
            offset: 0,
            len: 4096,
        });
        let done = q.fence().unwrap();
        assert_eq!(done.last().unwrap().completion, r.unwrap());
        assert!(
            done.last().unwrap().payload.data().iter().all(|&b| b == 23),
            "the queued read must observe the last queued write"
        );
    }

    #[test]
    fn writev_is_zero_copy_per_buffer_and_readv_splits() {
        let mut q = queue();
        // Spans the object 0 / object 1 boundary of a 4 MB object.
        let offset = (4 << 20) - 4096;
        q.submit(IoOp::Writev {
            offset,
            buffers: vec![vec![1u8; 4096], vec![2u8; 8192]],
        })
        .unwrap();
        q.submit(IoOp::Readv {
            offset,
            lens: vec![4096, 4096, 4096],
        })
        .unwrap();
        let done = q.fence().unwrap();
        let segments = done[1].payload.segments();
        assert_eq!(segments.len(), 3);
        assert!(segments[0].iter().all(|&b| b == 1));
        assert!(segments[1].iter().all(|&b| b == 2));
        assert!(segments[2].iter().all(|&b| b == 2));
        // The gather touched two objects: one batch, two transactions.
        assert_eq!(done[0].stats.transactions, 2);
        assert_eq!(done[0].stats.batches, 1);
    }

    #[test]
    fn poll_reaps_only_completed_ops() {
        let mut q = queue();
        q.submit(IoOp::Write {
            offset: 0,
            data: vec![7; 512],
        })
        .unwrap();
        // poll never blocks (it may reap zero ops); wait parks until
        // the op finishes — no spinning anywhere.
        let mut reaped = q.poll().unwrap();
        reaped.extend(q.wait().unwrap());
        assert_eq!(reaped.len(), 1);
        assert_eq!(q.in_flight(), 0);
    }

    #[test]
    fn wait_any_reaps_available_completions_without_head_of_line_blocking() {
        let mut q = queue();
        // A large multi-object write at the queue head followed by many
        // small disjoint ops: wait_any must keep returning whatever has
        // finished, never insisting on the oldest op first.
        q.submit(IoOp::Write {
            offset: 0,
            data: vec![0x11; 16 << 20],
        })
        .unwrap();
        for i in 0..8u64 {
            q.submit(IoOp::Write {
                offset: (i + 4) * (4 << 20),
                data: vec![0x22; 4096],
            })
            .unwrap();
        }
        let mut reaped = 0;
        while q.in_flight() > 0 {
            let results = q.wait_any().unwrap();
            assert!(
                !results.is_empty(),
                "wait_any must block until something completes"
            );
            reaped += results.len();
        }
        assert_eq!(reaped, 9);
        assert_eq!(q.wait_any().unwrap().len(), 0, "idle queue returns empty");
    }

    #[test]
    fn wait_any_rotates_its_scan_start_across_passes() {
        // Regression: wait_any used to scan strictly in submission
        // order, so ticket 0 was always serviced first — a hot early
        // ticket could shadow later completions forever. With the
        // rotating start, the first-probed slot must cycle.
        struct Slot(usize);
        impl PendingOp for Slot {
            fn subscribe(&self, _bell: &Arc<Doorbell>) {}
        }
        let mut q: ReapQueue<Slot> = ReapQueue::default();
        let mut first_probed = Vec::new();
        for _ in 0..4 {
            for slot in 0..3 {
                q.push(Slot(slot));
            }
            let mut first = None;
            let done = q
                .wait_any::<()>(
                    &mut |p| {
                        first.get_or_insert(p.0);
                        Ok(true)
                    },
                    &mut |completion, _| {
                        Ok(IoResult {
                            completion,
                            plan: Plan::seq([]),
                            payload: IoPayload::None,
                            stats: ExecStats::default(),
                        })
                    },
                )
                .unwrap();
            assert_eq!(done.len(), 3);
            first_probed.push(first.unwrap());
        }
        assert_eq!(
            first_probed,
            vec![0, 1, 2, 0],
            "the wait_any scan start must rotate over the pending set"
        );
    }

    #[test]
    fn out_of_bounds_submission_fails_synchronously() {
        let mut q = queue();
        let size = q.image().size();
        assert!(q
            .submit(IoOp::Write {
                offset: size,
                data: vec![0; 1],
            })
            .is_err());
        assert!(q
            .submit(IoOp::Readv {
                offset: size - 4096,
                lens: vec![4096, 1],
            })
            .is_err());
        assert_eq!(q.in_flight(), 0);
    }

    #[test]
    fn remove_flushes_in_flight_queued_writes() {
        let cluster = Cluster::builder().concurrent_apply(true).build();
        let image = Image::create(&cluster, "rm-race", 64 << 20).unwrap();
        let mut q = IoQueue::new(&image);
        for i in 0..16u64 {
            q.submit(IoOp::Write {
                offset: i * (4 << 20),
                data: vec![1; 4096],
            })
            .unwrap();
        }
        // Fire-and-forget: drop the queue without reaping, then remove
        // the image while writes may still sit on the shard queues.
        drop(q);
        Image::remove(&cluster, "rm-race").unwrap();
        assert!(
            cluster.list_objects().is_empty(),
            "remove must not orphan data objects of in-flight writes"
        );
    }

    #[test]
    fn consecutive_objects_fan_out_over_consecutive_shards() {
        // Shard-aware striping: a write over N consecutive objects must
        // deterministically span min(N, shard_count) shards.
        let cluster = Cluster::builder().concurrent_apply(true).build();
        let image = Image::create_with_object_size(&cluster, "striped", 8 << 20, 1 << 20).unwrap();
        let mut q = IoQueue::new(&image);
        q.submit(IoOp::Write {
            offset: 0,
            data: vec![0x11; 8 << 20],
        })
        .unwrap();
        let done = q.fence().unwrap();
        assert_eq!(done[0].stats.transactions, 8);
        assert_eq!(
            done[0].stats.shard_fanout_max,
            cluster.shard_count() as u64,
            "8 consecutive objects must cover all 8 shards deterministically"
        );
    }
}
