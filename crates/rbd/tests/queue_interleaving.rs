//! Property: any interleaving of [`IoQueue`] submissions — reads and
//! writes racing in flight, fences at arbitrary points, completions
//! reaped by poll or wait — is byte-identical to replaying the same
//! operations sequentially through `write_at`/`read_at` on a mirror
//! image. This is the queue API's ordering contract (per-shard FIFO,
//! single consumer) stated as an executable property.

use proptest::prelude::*;
use vdisk_rados::Cluster;
use vdisk_rbd::{Image, IoOp, IoPayload, IoQueue};

const IMAGE_SIZE: u64 = 8 << 20;
const OBJECT_SIZE: u64 = 1 << 20;

#[derive(Debug, Clone)]
enum Action {
    Write { offset: u64, len: usize, fill: u8 },
    Read { offset: u64, len: usize },
    Fence,
    Poll,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u64..IMAGE_SIZE, 1usize..300_000, any::<u8>()).prop_map(|(offset, len, fill)| {
            let len = len.min((IMAGE_SIZE - offset) as usize);
            Action::Write { offset, len, fill }
        }),
        (0u64..IMAGE_SIZE, 1usize..300_000).prop_map(|(offset, len)| {
            let len = len.min((IMAGE_SIZE - offset) as usize);
            Action::Read { offset, len }
        }),
        Just(Action::Fence),
        Just(Action::Poll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn queued_interleavings_match_sequential_replay(
        actions in proptest::collection::vec(action_strategy(), 4..24)
    ) {
        // Queued side: workers forced on, completions reaped lazily.
        let cluster = Cluster::builder().concurrent_apply(true).build();
        let image =
            Image::create_with_object_size(&cluster, "q", IMAGE_SIZE, OBJECT_SIZE).unwrap();
        let mut queue = IoQueue::new(&image);

        // Model side: a plain in-memory mirror updated in submission
        // order (sequential semantics).
        let mut mirror = vec![0u8; IMAGE_SIZE as usize];
        // Expected payload per read submission id.
        let mut expected_reads: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut seen_reads: Vec<(u64, Vec<u8>)> = Vec::new();

        let reap = |results: Vec<vdisk_rbd::IoResult>,
                        seen: &mut Vec<(u64, Vec<u8>)>| {
            for result in results {
                if let IoPayload::Data(data) = result.payload {
                    seen.push((result.completion.id(), data));
                }
            }
        };

        for action in &actions {
            match action {
                Action::Write { offset, len, fill } => {
                    let data = vec![*fill; *len];
                    mirror[*offset as usize..*offset as usize + len].copy_from_slice(&data);
                    queue.submit(IoOp::Write { offset: *offset, data }).unwrap();
                }
                Action::Read { offset, len } => {
                    let completion = queue
                        .submit(IoOp::Read { offset: *offset, len: *len as u64 })
                        .unwrap();
                    let expected =
                        mirror[*offset as usize..*offset as usize + len].to_vec();
                    expected_reads.push((completion.id(), expected));
                }
                Action::Fence => reap(queue.fence().unwrap(), &mut seen_reads),
                Action::Poll => reap(queue.poll().unwrap(), &mut seen_reads),
            }
        }
        reap(queue.fence().unwrap(), &mut seen_reads);

        // Every read saw exactly the bytes of the model at its
        // submission point, regardless of what was in flight.
        seen_reads.sort_by_key(|(id, _)| *id);
        prop_assert_eq!(seen_reads.len(), expected_reads.len());
        for ((id_seen, data), (id_expected, expected)) in
            seen_reads.iter().zip(&expected_reads)
        {
            prop_assert_eq!(id_seen, id_expected);
            prop_assert_eq!(data, expected, "read {} diverged", id_seen);
        }

        // And the final image state is byte-identical to the mirror.
        let mut final_state = vec![0u8; IMAGE_SIZE as usize];
        image.read_at(0, &mut final_state).unwrap();
        prop_assert_eq!(&final_state, &mirror);
    }
}
