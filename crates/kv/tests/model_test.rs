//! Model-based property test: the LSM must agree with a plain
//! `BTreeMap` under arbitrary interleavings of puts, deletes, batches,
//! flushes, compactions and crash-recoveries.

use proptest::prelude::*;
use std::collections::BTreeMap;
use vdisk_kv::{LsmConfig, LsmStore};

#[derive(Debug, Clone)]
enum Op {
    Put(u16, Vec<u8>),
    Delete(u16),
    Batch(Vec<(u16, Option<Vec<u8>>)>),
    Flush,
    Compact,
    CrashRecover,
    CheckGet(u16),
    CheckRange(u16, u16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(k, v)| Op::Put(k % 64, v)),
        any::<u16>().prop_map(|k| Op::Delete(k % 64)),
        proptest::collection::vec(
            (
                any::<u16>(),
                proptest::option::of(proptest::collection::vec(any::<u8>(), 0..16))
            ),
            1..6
        )
        .prop_map(|entries| Op::Batch(entries.into_iter().map(|(k, v)| (k % 64, v)).collect())),
        Just(Op::Flush),
        Just(Op::Compact),
        Just(Op::CrashRecover),
        any::<u16>().prop_map(|k| Op::CheckGet(k % 64)),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::CheckRange(a % 64, b % 64)),
    ]
}

fn key_bytes(k: u16) -> Vec<u8> {
    k.to_be_bytes().to_vec()
}

fn tight_config() -> LsmConfig {
    LsmConfig {
        memtable_flush_bytes: 128, // force frequent flushes
        max_runs: 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lsm_matches_btreemap_model(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let mut store = LsmStore::new(tight_config());
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Put(k, v) => {
                    store.put(key_bytes(k), v.clone());
                    model.insert(key_bytes(k), v);
                }
                Op::Delete(k) => {
                    store.delete(key_bytes(k));
                    model.remove(&key_bytes(k));
                }
                Op::Batch(entries) => {
                    let batch: Vec<(Vec<u8>, Option<Vec<u8>>)> = entries
                        .iter()
                        .map(|(k, v)| (key_bytes(*k), v.clone()))
                        .collect();
                    store.write_batch(batch);
                    for (k, v) in entries {
                        match v {
                            Some(v) => {
                                model.insert(key_bytes(k), v);
                            }
                            None => {
                                model.remove(&key_bytes(k));
                            }
                        }
                    }
                }
                Op::Flush => {
                    store.flush();
                }
                Op::Compact => {
                    store.compact();
                }
                Op::CrashRecover => {
                    // The WAL + runs must reconstruct everything.
                    let (runs, wal) = store.durable_snapshot();
                    store = LsmStore::recover(tight_config(), runs, &wal);
                }
                Op::CheckGet(k) => {
                    let (got, _) = store.get(&key_bytes(k));
                    prop_assert_eq!(
                        got.as_deref(),
                        model.get(&key_bytes(k)).map(Vec::as_slice),
                        "get({}) diverged", k
                    );
                }
                Op::CheckRange(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let (got, _) = store.range(&key_bytes(lo), &key_bytes(hi));
                    let expected: Vec<(Vec<u8>, Vec<u8>)> = model
                        .range(key_bytes(lo)..key_bytes(hi))
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, expected, "range [{}, {}) diverged", lo, hi);
                }
            }
        }

        // Final full sweep.
        let (got, _) = store.range(&[], &[0xFF; 3]);
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(got, expected, "final full range diverged");
    }
}
