//! The in-memory write buffer of the LSM: an ordered map with
//! tombstones and byte-size accounting.

use std::collections::BTreeMap;
use std::ops::Bound;

/// An ordered in-memory buffer of recent writes.
///
/// `None` values are tombstones: they shadow older versions in the
/// sorted runs until compaction drops them.
#[derive(Debug, Default, Clone)]
pub struct Memtable {
    entries: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    approx_bytes: usize,
}

impl Memtable {
    /// Creates an empty memtable.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key/value pair; returns the bytes this insert added.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) -> usize {
        let added = key.len() + value.len();
        self.remove_accounting(&key);
        self.approx_bytes += added;
        self.entries.insert(key, Some(value));
        added
    }

    /// Inserts a tombstone for `key`.
    pub fn delete(&mut self, key: Vec<u8>) {
        self.remove_accounting(&key);
        self.approx_bytes += key.len();
        self.entries.insert(key, None);
    }

    fn remove_accounting(&mut self, key: &[u8]) {
        if let Some(old) = self.entries.get(key) {
            let old_bytes = key.len() + old.as_ref().map_or(0, Vec::len);
            self.approx_bytes = self.approx_bytes.saturating_sub(old_bytes);
        }
    }

    /// Looks up a key. `Some(None)` means "deleted here" (tombstone);
    /// outer `None` means "not present in this memtable".
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<Option<&[u8]>> {
        self.entries.get(key).map(|v| v.as_deref())
    }

    /// Iterates entries with keys in `[start, end)`, tombstones
    /// included.
    pub fn range<'a>(
        &'a self,
        start: &[u8],
        end: &[u8],
    ) -> impl Iterator<Item = (&'a [u8], Option<&'a [u8]>)> {
        self.entries
            .range::<[u8], _>((Bound::Included(start), Bound::Excluded(end)))
            .map(|(k, v)| (k.as_slice(), v.as_deref()))
    }

    /// Iterates every entry in key order, tombstones included — the
    /// unbounded twin of [`Memtable::range`], used when serializing a
    /// store (durable backends persist OMAP content verbatim).
    pub fn iter_all(&self) -> impl Iterator<Item = (&[u8], Option<&[u8]>)> {
        self.entries
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_deref()))
    }

    /// Number of entries (tombstones included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate buffered bytes (keys + values).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Drains the memtable into a sorted entry list for a flush.
    #[must_use]
    pub fn drain_sorted(&mut self) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        self.approx_bytes = 0;
        std::mem::take(&mut self.entries).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut m = Memtable::new();
        m.put(b"a".to_vec(), b"1".to_vec());
        assert_eq!(m.get(b"a"), Some(Some(&b"1"[..])));
        m.delete(b"a".to_vec());
        assert_eq!(m.get(b"a"), Some(None), "tombstone visible");
        assert_eq!(m.get(b"b"), None, "absent key is None");
    }

    #[test]
    fn byte_accounting_replaces_old_versions() {
        let mut m = Memtable::new();
        m.put(b"key".to_vec(), vec![0; 100]);
        assert_eq!(m.approx_bytes(), 103);
        m.put(b"key".to_vec(), vec![0; 10]);
        assert_eq!(m.approx_bytes(), 13, "old version bytes released");
        m.delete(b"key".to_vec());
        assert_eq!(m.approx_bytes(), 3, "tombstone costs only the key");
    }

    #[test]
    fn range_is_sorted_and_half_open() {
        let mut m = Memtable::new();
        for k in [b"d", b"a", b"c", b"b"] {
            m.put(k.to_vec(), k.to_vec());
        }
        let keys: Vec<&[u8]> = m.range(b"a", b"c").map(|(k, _)| k).collect();
        assert_eq!(keys, vec![&b"a"[..], &b"b"[..]]);
    }

    #[test]
    fn drain_sorts_and_clears() {
        let mut m = Memtable::new();
        m.put(b"z".to_vec(), b"9".to_vec());
        m.put(b"a".to_vec(), b"1".to_vec());
        m.delete(b"m".to_vec());
        let drained = m.drain_sorted();
        assert_eq!(drained.len(), 3);
        assert!(drained.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(m.is_empty());
        assert_eq!(m.approx_bytes(), 0);
    }
}
