//! Immutable sorted runs (the on-"disk" levels of the LSM) and the
//! k-way merge used by compaction.

/// One run entry: a key and its value (`None` = tombstone).
type Entry = (Vec<u8>, Option<Vec<u8>>);

/// An immutable, sorted list of entries produced by a memtable flush or
/// a compaction. `None` values are tombstones.
#[derive(Debug, Clone, Default)]
pub struct SortedRun {
    entries: Vec<(Vec<u8>, Option<Vec<u8>>)>,
    bytes: usize,
}

impl SortedRun {
    /// Builds a run from pre-sorted entries.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if entries are not strictly sorted.
    #[must_use]
    pub fn from_sorted(entries: Vec<(Vec<u8>, Option<Vec<u8>>)>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "sorted run entries must be strictly increasing"
        );
        let bytes = entries
            .iter()
            .map(|(k, v)| k.len() + v.as_ref().map_or(0, Vec::len))
            .sum();
        SortedRun { entries, bytes }
    }

    /// Point lookup. Outer `None` = key not in this run;
    /// `Some(None)` = tombstone.
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<Option<&[u8]>> {
        self.entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|idx| self.entries[idx].1.as_deref())
    }

    /// Entries with keys in `[start, end)`, tombstones included.
    pub fn range<'a>(
        &'a self,
        start: &[u8],
        end: &[u8],
    ) -> impl Iterator<Item = (&'a [u8], Option<&'a [u8]>)> {
        let lo = self.entries.partition_point(|(k, _)| k.as_slice() < start);
        let end = end.to_vec();
        self.entries[lo..]
            .iter()
            .take_while(move |(k, _)| k.as_slice() < end.as_slice())
            .map(|(k, v)| (k.as_slice(), v.as_deref()))
    }

    /// Iterates every entry in key order, tombstones included — the
    /// unbounded twin of [`SortedRun::range`], used when serializing a
    /// store.
    pub fn iter_all(&self) -> impl Iterator<Item = (&[u8], Option<&[u8]>)> {
        self.entries
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_deref()))
    }

    /// Number of entries, tombstones included.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the run holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total key+value bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Merges runs (newest first) into a single run.
    ///
    /// For each key, the newest version wins. When `drop_tombstones`
    /// is true (a full/bottom-level compaction), deleted keys vanish
    /// entirely; otherwise tombstones are preserved so they keep
    /// shadowing older data elsewhere.
    #[must_use]
    pub fn merge(runs: &[&SortedRun], drop_tombstones: bool) -> SortedRun {
        // Simple approach: k-way by collecting cursors; runs are small
        // in this workload (IV blobs), clarity beats heap-based merge.
        let mut cursors: Vec<std::slice::Iter<'_, Entry>> =
            runs.iter().map(|r| r.entries.iter()).collect();
        let mut heads: Vec<Option<&Entry>> = cursors.iter_mut().map(Iterator::next).collect();
        let mut out: Vec<Entry> = Vec::new();

        loop {
            // Find the smallest key among heads; newest run (lowest
            // index) wins ties.
            let mut best: Option<(usize, &[u8])> = None;
            for (i, head) in heads.iter().enumerate() {
                if let Some((k, _)) = head {
                    match best {
                        None => best = Some((i, k)),
                        Some((_, bk)) if k.as_slice() < bk => best = Some((i, k)),
                        _ => {}
                    }
                }
            }
            let Some((winner, key)) = best else { break };
            let key = key.to_vec();
            // Take the winner's value; advance every cursor whose head
            // has the same (older, shadowed) key.
            let value = heads[winner].expect("winner has a head").1.clone();
            for (i, head) in heads.iter_mut().enumerate() {
                if let Some((k, _)) = head {
                    if k.as_slice() == key.as_slice() {
                        *head = cursors[i].next();
                    }
                }
            }
            if value.is_some() || !drop_tombstones {
                out.push((key, value));
            }
        }
        SortedRun::from_sorted(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(pairs: &[(&[u8], Option<&[u8]>)]) -> SortedRun {
        SortedRun::from_sorted(
            pairs
                .iter()
                .map(|(k, v)| (k.to_vec(), v.map(<[u8]>::to_vec)))
                .collect(),
        )
    }

    #[test]
    fn point_lookup() {
        let r = run(&[(b"a", Some(b"1")), (b"c", None), (b"e", Some(b"5"))]);
        assert_eq!(r.get(b"a"), Some(Some(&b"1"[..])));
        assert_eq!(r.get(b"c"), Some(None));
        assert_eq!(r.get(b"b"), None);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn range_half_open() {
        let r = run(&[(b"a", Some(b"1")), (b"b", Some(b"2")), (b"c", Some(b"3"))]);
        let keys: Vec<&[u8]> = r.range(b"a", b"c").map(|(k, _)| k).collect();
        assert_eq!(keys, vec![&b"a"[..], &b"b"[..]]);
        assert_eq!(r.range(b"x", b"z").count(), 0);
    }

    #[test]
    fn merge_newest_wins() {
        let newest = run(&[(b"a", Some(b"new")), (b"b", None)]);
        let oldest = run(&[
            (b"a", Some(b"old")),
            (b"b", Some(b"old")),
            (b"c", Some(b"3")),
        ]);
        let merged = SortedRun::merge(&[&newest, &oldest], false);
        assert_eq!(merged.get(b"a"), Some(Some(&b"new"[..])));
        assert_eq!(merged.get(b"b"), Some(None), "tombstone kept");
        assert_eq!(merged.get(b"c"), Some(Some(&b"3"[..])));
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn merge_drops_tombstones_at_bottom() {
        let newest = run(&[(b"b", None)]);
        let oldest = run(&[(b"a", Some(b"1")), (b"b", Some(b"2"))]);
        let merged = SortedRun::merge(&[&newest, &oldest], true);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged.get(b"a"), Some(Some(&b"1"[..])));
        assert_eq!(merged.get(b"b"), None, "tombstone and value both gone");
    }

    #[test]
    fn merge_of_disjoint_runs_concatenates() {
        let a = run(&[(b"a", Some(b"1"))]);
        let b = run(&[(b"z", Some(b"26"))]);
        let merged = SortedRun::merge(&[&a, &b], false);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn bytes_accounting() {
        let r = run(&[(b"ab", Some(b"cde"))]);
        assert_eq!(r.bytes(), 5);
    }
}
