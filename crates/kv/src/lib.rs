//! A miniature LSM-tree key-value store — the stand-in for RocksDB,
//! which backs Ceph's per-object **OMAP** metadata database.
//!
//! The paper's third IV-placement option stores per-sector IVs in OMAP
//! (§3.1, Fig. 2c) and finds that the approach wins at 4 KB IOs but
//! collapses as IO size grows, because the database pays a per-key cost
//! that the raw-object layouts do not (§3.3). To reproduce that shape
//! honestly, this crate implements a real (if small) LSM engine:
//!
//! - [`Memtable`]: an ordered in-memory write buffer with tombstones,
//! - [`WriteAheadLog`]: an append-only durability log with atomic
//!   batches and replay-based [`LsmStore::recover`],
//! - [`SortedRun`]: immutable sorted runs produced by flushes,
//! - compaction: full-merge when the run count exceeds a threshold,
//! - [`CostProfile`]: a RocksDB-shaped cost model (per-op floor,
//!   per-key CPU, per-byte WAL bandwidth) that converts op receipts
//!   into simulated time for `vdisk-sim`.
//!
//! Every operation returns a *receipt* describing the physical work it
//! caused (WAL bytes, keys touched, runs scanned, flush/compaction
//! bytes); the RADOS layer turns receipts into cost [`vdisk_sim::Plan`]s.
//!
//! # Example
//!
//! ```
//! use vdisk_kv::{LsmConfig, LsmStore};
//!
//! let mut store = LsmStore::new(LsmConfig::default());
//! store.put(b"0001".to_vec(), b"iv-bytes".to_vec());
//! let (value, receipt) = store.get(b"0001");
//! assert_eq!(value.as_deref(), Some(&b"iv-bytes"[..]));
//! assert!(receipt.keys_examined >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod memtable;
mod sst;
mod store;
mod wal;

pub use cost::CostProfile;
pub use memtable::Memtable;
pub use sst::SortedRun;
pub use store::{KvPairs, LsmConfig, LsmStats, LsmStore, ReadReceipt, WriteReceipt};
pub use wal::{WalBatch, WriteAheadLog};
