//! The LSM store: memtable + WAL + sorted runs + compaction, with
//! work receipts for the cost model.

use crate::memtable::Memtable;
use crate::sst::SortedRun;
use crate::wal::{WalBatch, WriteAheadLog};

/// Key-value pairs returned by range queries.
pub type KvPairs = Vec<(Vec<u8>, Vec<u8>)>;

/// Tuning knobs for the LSM.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Flush the memtable to a sorted run once it buffers this many
    /// bytes. RocksDB's default write buffer is 64 MB; OMAP workloads
    /// are small, so the default here is scaled down.
    pub memtable_flush_bytes: usize,
    /// Compact all runs into one once more than this many runs exist.
    pub max_runs: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_flush_bytes: 4 << 20,
            max_runs: 6,
        }
    }
}

/// Physical work caused by a write operation — the input to the
/// cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteReceipt {
    /// Keys inserted/deleted by this op.
    pub keys_written: u64,
    /// Bytes appended to the WAL (including batch framing).
    pub wal_bytes: u64,
    /// Bytes written out by a memtable flush this op triggered (0 if
    /// none).
    pub flush_bytes: u64,
    /// Bytes rewritten by a compaction this op triggered (0 if none).
    pub compaction_bytes: u64,
}

/// Physical work caused by a read operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadReceipt {
    /// Keys examined across memtable and runs (incl. shadowed
    /// versions).
    pub keys_examined: u64,
    /// Sorted runs probed.
    pub runs_probed: u64,
    /// Value bytes returned.
    pub bytes_returned: u64,
}

/// Aggregate state statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsmStats {
    /// Bytes buffered in the memtable.
    pub memtable_bytes: usize,
    /// Number of sorted runs.
    pub runs: usize,
    /// Entries across all runs (tombstones included).
    pub run_entries: usize,
    /// Current WAL size in bytes.
    pub wal_bytes: u64,
    /// Lifetime flush count.
    pub flushes: u64,
    /// Lifetime compaction count.
    pub compactions: u64,
}

/// The LSM key-value store. See the [crate docs](crate) for the role it
/// plays in the reproduction.
#[derive(Debug, Default, Clone)]
pub struct LsmStore {
    config: LsmConfig,
    memtable: Memtable,
    wal: WriteAheadLog,
    /// Newest first.
    runs: Vec<SortedRun>,
    flushes: u64,
    compactions: u64,
}

impl LsmStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new(config: LsmConfig) -> Self {
        LsmStore {
            config,
            memtable: Memtable::new(),
            wal: WriteAheadLog::new(),
            runs: Vec::new(),
            flushes: 0,
            compactions: 0,
        }
    }

    /// Rebuilds a store from durable state: the sorted runs plus a WAL
    /// to replay (volatile memtable contents are reconstructed batch by
    /// batch). Used by crash-recovery tests.
    #[must_use]
    pub fn recover(config: LsmConfig, runs: Vec<SortedRun>, wal: &WriteAheadLog) -> Self {
        let mut store = LsmStore {
            config,
            memtable: Memtable::new(),
            // The replayed batches are still volatile (only the runs
            // are durable), so the recovered store must carry the WAL
            // forward until the next flush truncates it — otherwise a
            // second crash would lose them.
            wal: wal.clone(),
            runs,
            flushes: 0,
            compactions: 0,
        };
        for batch in wal.replay() {
            store.apply_batch_internal(batch.clone());
        }
        store
    }

    /// Inserts one key/value pair.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) -> WriteReceipt {
        self.write_batch(vec![(key, Some(value))])
    }

    /// Deletes one key (writes a tombstone).
    pub fn delete(&mut self, key: Vec<u8>) -> WriteReceipt {
        self.write_batch(vec![(key, None)])
    }

    /// Applies a batch of writes atomically (RocksDB `WriteBatch`
    /// semantics): the batch hits the WAL as one record and is applied
    /// to the memtable as a unit.
    pub fn write_batch(&mut self, entries: Vec<(Vec<u8>, Option<Vec<u8>>)>) -> WriteReceipt {
        let batch = WalBatch { entries };
        let keys = batch.entries.len() as u64;
        let wal_bytes = self.wal.append(batch.clone());
        self.apply_batch_internal(batch);

        let mut receipt = WriteReceipt {
            keys_written: keys,
            wal_bytes,
            ..WriteReceipt::default()
        };
        if self.memtable.approx_bytes() >= self.config.memtable_flush_bytes {
            receipt.flush_bytes = self.flush();
            if self.runs.len() > self.config.max_runs {
                receipt.compaction_bytes = self.compact();
            }
        }
        receipt
    }

    fn apply_batch_internal(&mut self, batch: WalBatch) {
        for (key, value) in batch.entries {
            match value {
                Some(v) => {
                    self.memtable.put(key, v);
                }
                None => self.memtable.delete(key),
            }
        }
    }

    /// Forces a memtable flush; returns the bytes written to the new
    /// run.
    pub fn flush(&mut self) -> u64 {
        if self.memtable.is_empty() {
            return 0;
        }
        let run = SortedRun::from_sorted(self.memtable.drain_sorted());
        let bytes = run.bytes() as u64;
        self.runs.insert(0, run);
        self.wal.truncate();
        self.flushes += 1;
        bytes
    }

    /// Forces a full compaction; returns the bytes rewritten.
    pub fn compact(&mut self) -> u64 {
        if self.runs.len() <= 1 {
            return 0;
        }
        let refs: Vec<&SortedRun> = self.runs.iter().collect();
        let read_bytes: u64 = refs.iter().map(|r| r.bytes() as u64).sum();
        let merged = SortedRun::merge(&refs, true);
        let written = merged.bytes() as u64;
        self.runs = if merged.is_empty() {
            Vec::new()
        } else {
            vec![merged]
        };
        self.compactions += 1;
        read_bytes + written
    }

    /// Point lookup.
    #[must_use]
    pub fn get(&self, key: &[u8]) -> (Option<Vec<u8>>, ReadReceipt) {
        let mut receipt = ReadReceipt::default();
        receipt.keys_examined += 1;
        if let Some(hit) = self.memtable.get(key) {
            let value = hit.map(<[u8]>::to_vec);
            receipt.bytes_returned = value.as_ref().map_or(0, Vec::len) as u64;
            return (value, receipt);
        }
        for run in &self.runs {
            receipt.runs_probed += 1;
            receipt.keys_examined += 1;
            if let Some(hit) = run.get(key) {
                let value = hit.map(<[u8]>::to_vec);
                receipt.bytes_returned = value.as_ref().map_or(0, Vec::len) as u64;
                return (value, receipt);
            }
        }
        (None, receipt)
    }

    /// Returns all live entries with keys in `[start, end)`, newest
    /// version winning, tombstones suppressed.
    #[must_use]
    pub fn range(&self, start: &[u8], end: &[u8]) -> (KvPairs, ReadReceipt) {
        use std::collections::BTreeMap;
        let mut receipt = ReadReceipt::default();
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        // Oldest runs first, memtable last, so newer versions overwrite.
        for run in self.runs.iter().rev() {
            receipt.runs_probed += 1;
            for (k, v) in run.range(start, end) {
                receipt.keys_examined += 1;
                merged.insert(k.to_vec(), v.map(<[u8]>::to_vec));
            }
        }
        for (k, v) in self.memtable.range(start, end) {
            receipt.keys_examined += 1;
            merged.insert(k.to_vec(), v.map(<[u8]>::to_vec));
        }
        let out: Vec<(Vec<u8>, Vec<u8>)> = merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect();
        receipt.bytes_returned = out.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum();
        (out, receipt)
    }

    /// Every live entry in key order, newest version winning and
    /// tombstones suppressed — a full dump with **no** work receipt.
    /// This is the serialization surface for durable object-store
    /// backends, not a modeled read: it must not perturb the cost
    /// model, so it bypasses receipts entirely.
    #[must_use]
    pub fn entries(&self) -> KvPairs {
        use std::collections::BTreeMap;
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        // Oldest runs first, memtable last, so newer versions overwrite.
        for run in self.runs.iter().rev() {
            for (k, v) in run.iter_all() {
                merged.insert(k.to_vec(), v.map(<[u8]>::to_vec));
            }
        }
        for (k, v) in self.memtable.iter_all() {
            merged.insert(k.to_vec(), v.map(<[u8]>::to_vec));
        }
        merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect()
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> LsmStats {
        LsmStats {
            memtable_bytes: self.memtable.approx_bytes(),
            runs: self.runs.len(),
            run_entries: self.runs.iter().map(SortedRun::len).sum(),
            wal_bytes: self.wal.bytes(),
            flushes: self.flushes,
            compactions: self.compactions,
        }
    }

    /// Clones the durable state (runs + WAL) — what would survive a
    /// crash. Used by fault-injection tests.
    #[must_use]
    pub fn durable_snapshot(&self) -> (Vec<SortedRun>, WriteAheadLog) {
        (self.runs.clone(), self.wal.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> LsmConfig {
        LsmConfig {
            memtable_flush_bytes: 256,
            max_runs: 2,
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = LsmStore::new(LsmConfig::default());
        s.put(b"k".to_vec(), b"v".to_vec());
        assert_eq!(s.get(b"k").0.as_deref(), Some(&b"v"[..]));
        assert_eq!(s.get(b"missing").0, None);
    }

    #[test]
    fn delete_shadows_older_runs() {
        let mut s = LsmStore::new(small_config());
        s.put(b"k".to_vec(), b"v".to_vec());
        s.flush();
        s.delete(b"k".to_vec());
        assert_eq!(s.get(b"k").0, None);
        s.flush();
        assert_eq!(s.get(b"k").0, None, "tombstone in run still shadows");
    }

    #[test]
    fn flush_triggered_by_size() {
        let mut s = LsmStore::new(small_config());
        let mut flushed = false;
        for i in 0..100u32 {
            let r = s.put(i.to_be_bytes().to_vec(), vec![0xAA; 32]);
            if r.flush_bytes > 0 {
                flushed = true;
            }
        }
        assert!(flushed, "writes beyond the buffer size must flush");
        assert!(s.stats().flushes > 0);
        // All keys still readable after flushes.
        for i in 0..100u32 {
            assert!(s.get(&i.to_be_bytes()).0.is_some(), "key {i} lost");
        }
    }

    #[test]
    fn compaction_bounds_run_count() {
        let mut s = LsmStore::new(small_config());
        for i in 0..2000u32 {
            s.put(i.to_be_bytes().to_vec(), vec![1; 16]);
        }
        assert!(
            s.stats().runs <= small_config().max_runs + 1,
            "runs = {}",
            s.stats().runs
        );
        assert!(s.stats().compactions > 0);
        for i in (0..2000u32).step_by(97) {
            assert!(s.get(&i.to_be_bytes()).0.is_some(), "key {i} lost");
        }
    }

    #[test]
    fn range_merges_all_layers_newest_wins() {
        let mut s = LsmStore::new(small_config());
        s.put(b"a".to_vec(), b"old".to_vec());
        s.put(b"b".to_vec(), b"1".to_vec());
        s.flush();
        s.put(b"a".to_vec(), b"new".to_vec());
        s.put(b"c".to_vec(), b"2".to_vec());
        s.delete(b"b".to_vec());
        let (entries, receipt) = s.range(b"a", b"z");
        assert_eq!(
            entries,
            vec![
                (b"a".to_vec(), b"new".to_vec()),
                (b"c".to_vec(), b"2".to_vec()),
            ]
        );
        assert!(receipt.keys_examined >= 4);
        assert!(receipt.bytes_returned > 0);
    }

    #[test]
    fn entries_dumps_all_layers_without_receipts() {
        let mut s = LsmStore::new(small_config());
        s.put(b"a".to_vec(), b"old".to_vec());
        s.put(b"b".to_vec(), b"1".to_vec());
        s.flush();
        s.put(b"a".to_vec(), b"new".to_vec());
        s.delete(b"b".to_vec());
        // A key past the 16-byte fingerprint horizon must still dump.
        s.put(vec![0xFF; 24], b"edge".to_vec());
        let entries = s.entries();
        assert_eq!(
            entries,
            vec![
                (b"a".to_vec(), b"new".to_vec()),
                (vec![0xFF; 24], b"edge".to_vec()),
            ]
        );
    }

    #[test]
    fn write_batch_is_atomic_in_wal() {
        let mut s = LsmStore::new(LsmConfig::default());
        let receipt = s.write_batch(vec![
            (b"x".to_vec(), Some(b"1".to_vec())),
            (b"y".to_vec(), Some(b"2".to_vec())),
        ]);
        assert_eq!(receipt.keys_written, 2);
        assert!(receipt.wal_bytes > 0);
        let (_, wal) = s.durable_snapshot();
        assert_eq!(wal.len(), 1, "one batch, one WAL record");
    }

    #[test]
    fn recovery_replays_wal_over_runs() {
        let mut s = LsmStore::new(small_config());
        for i in 0..50u32 {
            s.put(i.to_be_bytes().to_vec(), i.to_le_bytes().to_vec());
        }
        s.put(b"volatile".to_vec(), b"yes".to_vec());
        s.delete(49u32.to_be_bytes().to_vec());

        let (runs, wal) = s.durable_snapshot();
        let recovered = LsmStore::recover(small_config(), runs, &wal);

        for i in 0..49u32 {
            assert_eq!(
                recovered.get(&i.to_be_bytes()).0,
                s.get(&i.to_be_bytes()).0,
                "key {i} diverged after recovery"
            );
        }
        assert_eq!(recovered.get(b"volatile").0.as_deref(), Some(&b"yes"[..]));
        assert_eq!(recovered.get(&49u32.to_be_bytes()).0, None);
    }

    #[test]
    fn receipts_count_work() {
        let mut s = LsmStore::new(LsmConfig::default());
        let w = s.put(b"key1".to_vec(), vec![0; 16]);
        assert_eq!(w.keys_written, 1);
        assert_eq!(w.wal_bytes, 16 + 8 + 4 + 16);
        s.flush();
        let (_, r) = s.get(b"key1");
        assert_eq!(r.runs_probed, 1);
        let (_, r) = s.get(b"absent");
        assert_eq!(r.runs_probed, 1, "miss probes every run");
    }
}
