//! The RocksDB-shaped cost model: converts op receipts into simulated
//! time.
//!
//! The constants matter for the *shape* of the paper's Fig. 4: OMAP
//! cost is dominated by a per-key CPU charge, so writing 1024 IVs for
//! one 4 MB IO costs ~1000× the per-key charge while the raw-object
//! layouts pay a single near-sequential write. This is §3.3's "in the
//! OMAP solution, this calculation does not work" effect.

use crate::store::{ReadReceipt, WriteReceipt};
use vdisk_sim::SimDuration;

/// Cost constants for the KV engine, loosely calibrated to a RocksDB
/// instance on an NVMe-backed OSD (the paper's testbed runs Ceph's
/// default RocksDB-backed OMAP).
#[derive(Debug, Clone)]
pub struct CostProfile {
    /// Fixed cost of entering the DB for one operation (batch or read).
    pub per_op: SimDuration,
    /// CPU cost per key written (memtable insert + comparator work).
    pub per_key_write: SimDuration,
    /// CPU cost per key examined on reads.
    pub per_key_read: SimDuration,
    /// WAL append bandwidth in bytes/second.
    pub wal_bytes_per_sec: f64,
    /// Flush/compaction rewrite bandwidth in bytes/second (charged on
    /// the op that triggered the background work — amortization shows
    /// up as occasional spikes, as in a real LSM).
    pub rewrite_bytes_per_sec: f64,
    /// Cost per sorted run probed on a point read (binary search +
    /// block cache lookup).
    pub per_run_probe: SimDuration,
}

impl Default for CostProfile {
    fn default() -> Self {
        CostProfile {
            per_op: SimDuration::from_micros(12),
            per_key_write: SimDuration::from_nanos(4_000),
            per_key_read: SimDuration::from_nanos(600),
            wal_bytes_per_sec: 400.0e6,
            rewrite_bytes_per_sec: 900.0e6,
            per_run_probe: SimDuration::from_micros(2),
        }
    }
}

impl CostProfile {
    /// Simulated service time of a write described by `receipt`.
    ///
    /// WAL bytes are *not* charged here: the storage layer accounts
    /// the WAL commit on the disk it shares with the data path (see
    /// `vdisk-rados`'s cost model); this is the CPU/engine time only.
    #[must_use]
    pub fn write_time(&self, receipt: &WriteReceipt) -> SimDuration {
        let mut t = self.per_op;
        t += per_each(self.per_key_write, receipt.keys_written);
        let rewrite = receipt.flush_bytes + receipt.compaction_bytes;
        if rewrite > 0 {
            t += SimDuration::from_secs_f64(rewrite as f64 / self.rewrite_bytes_per_sec);
        }
        t
    }

    /// Simulated service time of a read described by `receipt`.
    #[must_use]
    pub fn read_time(&self, receipt: &ReadReceipt) -> SimDuration {
        let mut t = self.per_op;
        t += per_each(self.per_key_read, receipt.keys_examined);
        t += per_each(self.per_run_probe, receipt.runs_probed);
        t
    }
}

fn per_each(unit: SimDuration, count: u64) -> SimDuration {
    SimDuration::from_nanos(unit.as_nanos() * count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_cost_scales_with_keys() {
        let profile = CostProfile::default();
        let one_key = WriteReceipt {
            keys_written: 1,
            wal_bytes: 40,
            ..WriteReceipt::default()
        };
        let kilo_keys = WriteReceipt {
            keys_written: 1024,
            wal_bytes: 40 * 1024,
            ..WriteReceipt::default()
        };
        let t1 = profile.write_time(&one_key);
        let t1024 = profile.write_time(&kilo_keys);
        // The per-key term must dominate at high key counts: the 1024-
        // key batch costs far more than the per-op floor suggests.
        assert!(
            t1024.as_nanos() > 50 * t1.as_nanos() / 2,
            "t1={t1}, t1024={t1024}"
        );
        assert!(
            t1024.as_nanos() > 2_000_000,
            "1024-key batch above 2ms: {t1024}"
        );
    }

    #[test]
    fn read_cost_scales_with_scan_width() {
        let profile = CostProfile::default();
        let point = ReadReceipt {
            keys_examined: 2,
            runs_probed: 1,
            bytes_returned: 16,
        };
        let scan = ReadReceipt {
            keys_examined: 1024,
            runs_probed: 3,
            bytes_returned: 16 * 1024,
        };
        assert!(profile.read_time(&scan) > profile.read_time(&point));
    }

    #[test]
    fn flush_spike_is_charged() {
        let profile = CostProfile::default();
        let quiet = WriteReceipt {
            keys_written: 1,
            wal_bytes: 40,
            ..WriteReceipt::default()
        };
        let flushing = WriteReceipt {
            flush_bytes: 8 << 20,
            ..quiet
        };
        assert!(profile.write_time(&flushing) > profile.write_time(&quiet));
    }
}
