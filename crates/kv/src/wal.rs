//! The write-ahead log: atomic batches, byte accounting and replay.

/// One atomic batch of writes. Entries with `None` values are deletes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalBatch {
    /// The writes in this batch (applied atomically on replay).
    pub entries: Vec<(Vec<u8>, Option<Vec<u8>>)>,
}

impl WalBatch {
    /// Encoded size of the batch: a 16-byte header plus, per entry,
    /// an 8-byte length prefix and the key/value payloads. This is the
    /// number used to charge WAL write bandwidth in the cost model.
    #[must_use]
    pub fn encoded_bytes(&self) -> u64 {
        16 + self
            .entries
            .iter()
            .map(|(k, v)| 8 + k.len() as u64 + v.as_ref().map_or(0, Vec::len) as u64)
            .sum::<u64>()
    }
}

/// An append-only log of [`WalBatch`]es.
///
/// The LSM appends a batch *before* applying it to the memtable; on
/// recovery, replaying all batches (in order, atomically) restores the
/// volatile state. Flushing the memtable truncates the log.
#[derive(Debug, Clone, Default)]
pub struct WriteAheadLog {
    batches: Vec<WalBatch>,
    bytes: u64,
}

impl WriteAheadLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an atomic batch; returns its encoded size in bytes.
    pub fn append(&mut self, batch: WalBatch) -> u64 {
        let encoded = batch.encoded_bytes();
        self.bytes += encoded;
        self.batches.push(batch);
        encoded
    }

    /// Current log size in encoded bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of batches currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// True when the log holds no batches.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Truncates the log (called after a successful memtable flush).
    pub fn truncate(&mut self) {
        self.batches.clear();
        self.bytes = 0;
    }

    /// Iterates batches in append order, for replay.
    pub fn replay(&self) -> impl Iterator<Item = &WalBatch> {
        self.batches.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_accounts_bytes() {
        let mut wal = WriteAheadLog::new();
        let batch = WalBatch {
            entries: vec![(b"key".to_vec(), Some(b"value".to_vec()))],
        };
        let encoded = wal.append(batch.clone());
        assert_eq!(encoded, 16 + 8 + 3 + 5);
        assert_eq!(wal.bytes(), encoded);
        assert_eq!(wal.len(), 1);
        assert_eq!(wal.replay().next(), Some(&batch));
    }

    #[test]
    fn deletes_cost_key_only() {
        let batch = WalBatch {
            entries: vec![(b"key".to_vec(), None)],
        };
        assert_eq!(batch.encoded_bytes(), 16 + 8 + 3);
    }

    #[test]
    fn truncate_resets() {
        let mut wal = WriteAheadLog::new();
        wal.append(WalBatch {
            entries: vec![(b"a".to_vec(), Some(b"b".to_vec()))],
        });
        wal.truncate();
        assert!(wal.is_empty());
        assert_eq!(wal.bytes(), 0);
        assert_eq!(wal.replay().count(), 0);
    }

    #[test]
    fn replay_preserves_order() {
        let mut wal = WriteAheadLog::new();
        for i in 0..5u8 {
            wal.append(WalBatch {
                entries: vec![(vec![i], Some(vec![i]))],
            });
        }
        let keys: Vec<u8> = wal.replay().map(|b| b.entries[0].0[0]).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
    }
}
