//! Fixture-based tests for every rule: bad snippets flag with the
//! right rule and line, clean snippets pass, allow directives
//! round-trip (including the bare-allow violation), and the
//! lock-order analysis detects both direct and interprocedural
//! cycles.

use vdisk_lint::{analyze, Analysis, Config, Rule, SourceFile};

/// Runs the analyzer over in-memory fixtures.
fn run(files: &[(&str, &str)], cfg: &Config) -> Analysis {
    let sources: Vec<SourceFile> = files
        .iter()
        .map(|(path, text)| SourceFile {
            path: (*path).to_string(),
            text: (*text).to_string(),
        })
        .collect();
    analyze(&sources, cfg)
}

/// A registry with one secret type and one hot path, used by most
/// fixtures.
fn fixture_config() -> Config {
    Config {
        hot_paths: vec!["fix/src/hot.rs".into()],
        secret_types: vec!["MasterKey".into()],
        expose_methods: vec!["expose".into()],
    }
}

fn rules_and_lines(a: &Analysis) -> Vec<(Rule, usize)> {
    a.findings.iter().map(|f| (f.rule, f.line)).collect()
}

// ---------------------------------------------------------------- secrets

#[test]
fn secret_debug_derive_flagged_at_attr_line() {
    let src = "\
pub struct Harmless {
    pub n: u64,
}
#[derive(Debug)]
pub struct MasterKey {
    key: [u8; 32],
}
";
    let a = run(&[("crates/fix/src/cold.rs", src)], &fixture_config());
    assert!(
        rules_and_lines(&a).contains(&(Rule::SecretDerive, 4)),
        "expected secret-derive at the #[derive] line, got {:?}",
        a.findings
    );
}

#[test]
fn secret_embedding_struct_clone_flagged() {
    let src = "\
#[derive(Clone)]
pub struct Slot {
    pub wrapped: MasterKey,
}
";
    let a = run(&[("crates/fix/src/cold.rs", src)], &fixture_config());
    assert!(
        rules_and_lines(&a).contains(&(Rule::SecretDerive, 1)),
        "a struct embedding a secret type inherits the derive ban: {:?}",
        a.findings
    );
}

#[test]
fn secret_format_interpolation_flagged() {
    let src = "\
fn leak(key: &MasterKey) {
    println!(\"the key is {:?}\", key);
}
";
    let a = run(&[("crates/fix/src/cold.rs", src)], &fixture_config());
    assert!(
        rules_and_lines(&a).contains(&(Rule::SecretFormat, 2)),
        "secret-typed param in a format macro must flag: {:?}",
        a.findings
    );
}

#[test]
fn secret_format_inline_capture_and_expose_flagged() {
    let src = "\
fn leak_capture() {
    let key = MasterKey::generate();
    println!(\"got {key}\");
}
fn leak_expose(k: &MasterKey) {
    let shown = format!(\"{:x?}\", k.expose());
    drop(shown);
}
";
    let a = run(&[("crates/fix/src/cold.rs", src)], &fixture_config());
    let got = rules_and_lines(&a);
    assert!(
        got.contains(&(Rule::SecretFormat, 3)),
        "inline capture: {got:?}"
    );
    assert!(
        got.contains(&(Rule::SecretFormat, 6)),
        ".expose() in args: {got:?}"
    );
}

#[test]
fn secret_zeroize_gap_flagged_and_coverage_clears_it() {
    let gap = "\
pub struct MasterKey {
    material: [u8; 32],
}
";
    let a = run(&[("crates/fix/src/cold.rs", gap)], &fixture_config());
    assert!(
        rules_and_lines(&a).contains(&(Rule::SecretZeroize, 2)),
        "raw byte field with no zeroize call anywhere: {:?}",
        a.findings
    );

    // The same struct plus a shred path naming the field, in another
    // file of the same crate: coverage is crate-wide.
    let shred = "\
pub fn shred(key: &mut MasterKey) {
    zeroize(&mut key.material);
}
";
    let a = run(
        &[
            ("crates/fix/src/cold.rs", gap),
            ("crates/fix/src/shred.rs", shred),
        ],
        &fixture_config(),
    );
    assert!(
        a.findings.is_empty(),
        "a crate-wide zeroize naming the field covers it: {:?}",
        a.findings
    );
}

#[test]
fn self_zeroizing_drop_impl_covers_tuple_fields() {
    let src = "\
pub struct MasterKey(Vec<u8>);
impl Drop for MasterKey {
    fn drop(&mut self) {
        zeroize(&mut self.0);
    }
}
";
    let a = run(&[("crates/fix/src/cold.rs", src)], &fixture_config());
    assert!(
        a.findings.is_empty(),
        "zeroize(&mut self.0) in the type's own method is coverage: {:?}",
        a.findings
    );
}

// ------------------------------------------------------------- panic audit

#[test]
fn hot_path_panics_flagged_only_in_hot_modules() {
    let src = "\
pub fn risky(v: &[u8]) -> u8 {
    let head = v.first().unwrap();
    if *head > 250 {
        panic!(\"too big\");
    }
    *head
}
";
    let hot = run(&[("crates/fix/src/hot.rs", src)], &fixture_config());
    let got = rules_and_lines(&hot);
    assert!(got.contains(&(Rule::HotPathPanic, 2)), "unwrap: {got:?}");
    assert!(got.contains(&(Rule::HotPathPanic, 4)), "panic!: {got:?}");

    let cold = run(&[("crates/fix/src/cold.rs", src)], &fixture_config());
    assert!(
        cold.findings.is_empty(),
        "the same code outside a hot path is fine: {:?}",
        cold.findings
    );
}

#[test]
fn hot_path_indexing_flagged() {
    let src = "\
pub fn head(v: &[u8]) -> u8 {
    v[0]
}
";
    let a = run(&[("crates/fix/src/hot.rs", src)], &fixture_config());
    assert_eq!(
        rules_and_lines(&a),
        vec![(Rule::HotPathIndex, 2)],
        "{:?}",
        a.findings
    );
}

#[test]
fn poison_recovery_idiom_is_not_a_panic_site() {
    let src = "\
pub fn locked(m: &std::sync::Mutex<u64>) -> u64 {
    *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
";
    let a = run(&[("crates/fix/src/hot.rs", src)], &fixture_config());
    assert!(
        a.findings.is_empty(),
        "PoisonError::into_inner recovery never panics: {:?}",
        a.findings
    );
}

#[test]
fn test_code_in_hot_modules_is_exempt() {
    let src = "\
pub fn safe() -> u8 {
    0
}

#[cfg(test)]
mod tests {
    #[test]
    fn check() {
        let v = vec![1u8];
        assert_eq!(v[0], v.first().copied().unwrap());
    }
}
";
    let a = run(&[("crates/fix/src/hot.rs", src)], &fixture_config());
    assert!(a.findings.is_empty(), "{:?}", a.findings);
}

// --------------------------------------------------------- allow directives

#[test]
fn trailing_and_comment_above_allows_suppress() {
    let src = "\
pub fn justified(v: &[u8]) -> u8 {
    let head = v[0]; // vdisk-lint: allow(hot-path-index) reason=\"caller checks non-empty\"
    // vdisk-lint: allow(hot-path-panic) reason=\"len checked above\"
    let tail = v.last().unwrap();
    head + tail
}
";
    let a = run(&[("crates/fix/src/hot.rs", src)], &fixture_config());
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    assert_eq!(a.allows_used, 2);
}

#[test]
fn bare_allow_without_reason_is_itself_a_violation() {
    let src = "\
pub fn unjustified(v: &[u8]) -> u8 {
    // vdisk-lint: allow(hot-path-index)
    v[0]
}
";
    let a = run(&[("crates/fix/src/hot.rs", src)], &fixture_config());
    let got = rules_and_lines(&a);
    assert!(
        got.contains(&(Rule::LintAllow, 2)),
        "reasonless allow must flag lint-allow: {got:?}"
    );
    assert!(
        got.contains(&(Rule::HotPathIndex, 3)),
        "and the site it failed to justify still flags: {got:?}"
    );
}

#[test]
fn allow_for_the_wrong_rule_does_not_suppress() {
    let src = "\
pub fn mismatched(v: &[u8]) -> u8 {
    // vdisk-lint: allow(hot-path-panic) reason=\"not the rule that fires here\"
    v[0]
}
";
    let a = run(&[("crates/fix/src/hot.rs", src)], &fixture_config());
    assert!(
        rules_and_lines(&a).contains(&(Rule::HotPathIndex, 3)),
        "{:?}",
        a.findings
    );
}

// ---------------------------------------------------------------- lock order

/// Two lock classes acquired in opposite orders by two functions.
const LOCK_CYCLE: &str = "\
use std::sync::Mutex;

pub struct Left {
    pub a_lock: Mutex<u64>,
}
pub struct Right {
    pub b_lock: Mutex<u64>,
}

pub fn forward(l: &Left, r: &Right) -> u64 {
    let g = l.a_lock.lock().unwrap();
    let h = r.b_lock.lock().unwrap();
    *g + *h
}

pub fn backward(l: &Left, r: &Right) -> u64 {
    let h = r.b_lock.lock().unwrap();
    let g = l.a_lock.lock().unwrap();
    *g + *h
}
";

#[test]
fn opposite_acquisition_orders_form_a_cycle() {
    let a = run(&[("crates/fix/src/cold.rs", LOCK_CYCLE)], &fixture_config());
    assert_eq!(a.lock_graph.classes.len(), 2, "{:?}", a.lock_graph.classes);
    assert_eq!(a.lock_graph.cycles.len(), 1, "{:?}", a.lock_graph.cycles);
    let cycle = &a.lock_graph.cycles[0];
    assert!(cycle.iter().any(|c| c.starts_with("Left::a_lock")));
    assert!(cycle.iter().any(|c| c.starts_with("Right::b_lock")));
    assert!(
        a.findings.iter().any(|f| f.rule == Rule::LockOrder),
        "a cycle must surface as a lock-order finding: {:?}",
        a.findings
    );
}

#[test]
fn cycle_renders_red_in_dot_and_named_in_report() {
    let a = run(&[("crates/fix/src/cold.rs", LOCK_CYCLE)], &fixture_config());
    let dot = a.lock_graph.to_dot();
    assert!(dot.starts_with("digraph lock_order {"), "{dot}");
    assert!(dot.contains("color=red"), "cyclic nodes render red: {dot}");
    assert!(
        dot.contains("\"Left::a_lock (fix/src/cold.rs)\" -> \"Right::b_lock (fix/src/cold.rs)\"")
    );
    let report = a.lock_graph.report();
    assert!(report.contains("CYCLE:"), "{report}");
}

#[test]
fn consistent_order_has_edges_but_no_cycle() {
    let src = "\
use std::sync::Mutex;

pub struct Left {
    pub a_lock: Mutex<u64>,
}
pub struct Right {
    pub b_lock: Mutex<u64>,
}

pub fn forward(l: &Left, r: &Right) -> u64 {
    let g = l.a_lock.lock().unwrap();
    let h = r.b_lock.lock().unwrap();
    *g + *h
}

pub fn forward_again(l: &Left, r: &Right) -> u64 {
    let g = l.a_lock.lock().unwrap();
    let h = r.b_lock.lock().unwrap();
    *g * *h
}
";
    let a = run(&[("crates/fix/src/cold.rs", src)], &fixture_config());
    assert!(!a.lock_graph.edges.is_empty());
    assert!(a.lock_graph.cycles.is_empty(), "{:?}", a.lock_graph.cycles);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
}

#[test]
fn interprocedural_cycle_found_through_the_call_graph() {
    // `outer_then_inner` holds Outer::outer_lock across a call to
    // `bump`, which acquires Inner::inner_lock; `inner_then_outer`
    // does the reverse directly. The edge through the call graph
    // closes the cycle.
    let src = "\
use std::sync::Mutex;

pub struct Outer {
    pub outer_lock: Mutex<u64>,
}
pub struct Inner {
    pub inner_lock: Mutex<u64>,
}

impl Inner {
    pub fn bump(&self) {
        let mut g = self.inner_lock.lock().unwrap();
        *g += 1;
    }

    pub fn inner_then_outer(&self, other: &Outer) -> u64 {
        let g = self.inner_lock.lock().unwrap();
        let h = other.outer_lock.lock().unwrap();
        *g + *h
    }
}

impl Outer {
    pub fn outer_then_inner(&self, other: &Inner) {
        let g = self.outer_lock.lock().unwrap();
        other.bump();
        drop(g);
    }
}
";
    let a = run(&[("crates/fix/src/cold.rs", src)], &fixture_config());
    assert_eq!(a.lock_graph.cycles.len(), 1, "{:?}", a.lock_graph.cycles);
    assert!(
        a.lock_graph
            .edges
            .iter()
            .any(|e| e.from.starts_with("Outer::outer_lock") && e.via.contains("bump")),
        "the Outer->Inner edge must come via the bump call: {:?}",
        a.lock_graph.edges
    );
}

#[test]
fn drop_releases_the_guard_before_the_next_acquisition() {
    let src = "\
use std::sync::Mutex;

pub struct Left {
    pub a_lock: Mutex<u64>,
}
pub struct Right {
    pub b_lock: Mutex<u64>,
}

pub fn sequential(l: &Left, r: &Right) -> u64 {
    let g = l.a_lock.lock().unwrap();
    let first = *g;
    drop(g);
    let h = r.b_lock.lock().unwrap();
    first + *h
}
";
    let a = run(&[("crates/fix/src/cold.rs", src)], &fixture_config());
    assert!(
        a.lock_graph.edges.is_empty(),
        "dropped guard is not held across the second lock: {:?}",
        a.lock_graph.edges
    );
}

#[test]
fn lock_order_allow_suppresses_the_edge_before_cycle_detection() {
    let src = "\
use std::sync::Mutex;

pub struct Left {
    pub a_lock: Mutex<u64>,
}
pub struct Right {
    pub b_lock: Mutex<u64>,
}

pub fn forward(l: &Left, r: &Right) -> u64 {
    let g = l.a_lock.lock().unwrap();
    let h = r.b_lock.lock().unwrap();
    *g + *h
}

pub fn backward(l: &Left, r: &Right) -> u64 {
    let h = r.b_lock.lock().unwrap();
    // vdisk-lint: allow(lock-order) reason=\"backward runs single-threaded at startup, before forward can race it\"
    let g = l.a_lock.lock().unwrap();
    *g + *h
}
";
    let a = run(&[("crates/fix/src/cold.rs", src)], &fixture_config());
    assert!(
        a.lock_graph.cycles.is_empty(),
        "the allowed edge is removed before cycle detection: {:?}",
        a.lock_graph.cycles
    );
    assert_eq!(a.lock_graph.suppressed_edges.len(), 1);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    let dot = a.lock_graph.to_dot();
    assert!(
        dot.contains("style=dashed"),
        "suppressed edges render dashed: {dot}"
    );
}

// --------------------------------------------------------------- aggregate

#[test]
fn clean_fixture_set_reports_zero_everything() {
    let src = "\
pub struct Plain {
    pub n: u64,
}

pub fn double(p: &Plain) -> u64 {
    p.n * 2
}
";
    let a = run(&[("crates/fix/src/cold.rs", src)], &fixture_config());
    assert!(a.findings.is_empty());
    assert_eq!(a.files_scanned, 1);
    assert_eq!(a.allows_used, 0);
    assert!(a.lock_graph.classes.is_empty());
}

#[test]
fn findings_json_is_machine_readable() {
    let src = "\
pub fn bad(v: &[u8]) -> u8 {
    v[0]
}
";
    let a = run(&[("crates/fix/src/hot.rs", src)], &fixture_config());
    let json = vdisk_lint::report::findings_json(&a);
    assert!(json.contains("\"violations\": 1"), "{json}");
    assert!(json.contains("\"rule\": \"hot-path-index\""), "{json}");
    assert!(json.contains("\"line\": 2"), "{json}");
}
