//! Rendering: the machine-readable findings JSON (hand-rolled, same
//! style as `bench_gate`'s encoder — no serde) and the human summary.

use crate::{Analysis, Finding};

/// Escapes a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The findings file consumed by CI tooling: a stable, sorted, flat
/// JSON document (scripts can `grep '"rule"'` it without a parser).
pub fn findings_json(analysis: &Analysis) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"allows_used\": {},\n  \"violations\": {},\n",
        analysis.files_scanned,
        analysis.allows_used,
        analysis.findings.len()
    ));
    out.push_str("  \"findings\": [\n");
    for (i, f) in analysis.findings.iter().enumerate() {
        let sep = if i + 1 == analysis.findings.len() {
            ""
        } else {
            ","
        };
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{sep}\n",
            f.rule.as_str(),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"lock_classes\": {},\n  \"lock_edges\": {},\n  \"lock_cycles\": {}\n",
        analysis.lock_graph.classes.len(),
        analysis.lock_graph.edges.len(),
        analysis.lock_graph.cycles.len()
    ));
    out.push_str("}\n");
    out
}

/// One finding, `file:line: [rule] message` (the compiler-ish form
/// terminals and CI logs expect).
pub fn render_finding(f: &Finding) -> String {
    format!("{}:{}: [{}] {}", f.file, f.line, f.rule.as_str(), f.message)
}

/// The human report printed to stdout.
pub fn summary(analysis: &Analysis) -> String {
    let mut out = String::new();
    for f in &analysis.findings {
        out.push_str(&render_finding(f));
        out.push('\n');
    }
    if !analysis.findings.is_empty() {
        out.push('\n');
    }
    out.push_str(&format!(
        "vdisk-lint: {} files scanned, {} violations, {} allows in effect\n",
        analysis.files_scanned,
        analysis.findings.len(),
        analysis.allows_used
    ));
    out.push_str(&format!(
        "lock-order: {} classes, {} edges, {} cycles ({} edges suppressed)\n",
        analysis.lock_graph.classes.len(),
        analysis.lock_graph.edges.len(),
        analysis.lock_graph.cycles.len(),
        analysis.lock_graph.suppressed_edges.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
