//! Secret hygiene: key material must never leak through `Debug`,
//! `Clone`, or formatting, and raw key bytes must be zeroized on the
//! drop/shred path (the cold-boot line of attack the paper's
//! crypto-shred guarantee depends on).
//!
//! Three rules, driven by the registry in [`crate::Config`]:
//!
//! - [`Rule::SecretDerive`]: `#[derive(Debug)]`/`#[derive(Clone)]` on
//!   a registry type, or on any struct embedding one. Redacted manual
//!   `Debug` impls (like `SecretBytes`'s `"(n bytes)"`) are the fix;
//!   a load-bearing `Clone` carries an allow with its reason.
//! - [`Rule::SecretFormat`]: a registry-typed binding (or an
//!   `.expose()` call) interpolated into a format-like macro.
//! - [`Rule::SecretZeroize`]: a raw byte field (`[u8; N]`/`Vec<u8>`)
//!   of a registry struct that no `zeroize(...)` call in the crate
//!   ever names — a gap on the shred path.

use crate::lexer::TokenKind;
use crate::parse::matching;
use crate::{Config, Finding, PreparedFile, Rule};

/// Macros whose arguments are formatted (and therefore leak).
const FORMAT_MACROS: &[&str] = &[
    "format",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "todo",
    "unimplemented",
    "unreachable",
];

/// Runs the secret-hygiene rules over one file. `all` is the full
/// prepared set (zeroize coverage is checked crate-wide, so a shred
/// path in `luks.rs` covers fields declared there).
pub fn check(pf: &PreparedFile, all: &[PreparedFile], cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_derives(pf, cfg, &mut findings);
    check_format_interpolation(pf, cfg, &mut findings);
    check_zeroize_coverage(pf, all, cfg, &mut findings);
    findings
}

fn is_secret_type(cfg: &Config, name: &str) -> bool {
    cfg.secret_types.iter().any(|t| t == name)
}

/// A struct is secret-bearing if it IS a registry type or any field's
/// type mentions one.
fn struct_is_secret(cfg: &Config, s: &crate::parse::StructDef) -> bool {
    is_secret_type(cfg, &s.name)
        || s.fields
            .iter()
            .any(|f| f.type_idents.iter().any(|t| is_secret_type(cfg, t)))
}

fn check_derives(pf: &PreparedFile, cfg: &Config, findings: &mut Vec<Finding>) {
    for s in &pf.shape.structs {
        if s.in_test || !struct_is_secret(cfg, s) {
            continue;
        }
        for attr in &s.attrs {
            for trait_name in ["Debug", "Clone"] {
                if attr.derives(trait_name) {
                    findings.push(Finding {
                        rule: Rule::SecretDerive,
                        file: pf.path.clone(),
                        line: attr.line,
                        message: format!(
                            "`{}` holds key material; `#[derive({trait_name})]` can leak \
                             it (write a redacted manual impl, or allow with a reason)",
                            s.name
                        ),
                    });
                }
            }
        }
    }
}

/// Finds format-macro invocations whose arguments interpolate a
/// secret: a binding of registry type in the enclosing function, an
/// inline `{name}` capture of one, or an `.expose()` call.
fn check_format_interpolation(pf: &PreparedFile, cfg: &Config, findings: &mut Vec<Finding>) {
    let toks = &pf.lexed.tokens;
    for f in &pf.shape.fns {
        if f.in_test {
            continue;
        }
        let secret_bindings = collect_secret_bindings(pf, f, cfg);
        let body = &toks[f.body_start..f.body_end];
        let mut i = 0;
        while i + 2 < body.len() {
            let is_macro = body[i]
                .ident()
                .is_some_and(|id| FORMAT_MACROS.contains(&id))
                && body[i + 1].is_punct('!')
                && (body[i + 2].is_punct('(') || body[i + 2].is_punct('['));
            if !is_macro {
                i += 1;
                continue;
            }
            let open = i + 2;
            let close = matching(body, open, body.len());
            let line = body[i].line;
            let mut leaked: Option<String> = None;
            let mut j = open + 1;
            while j < close {
                match &body[j].kind {
                    // Inline captures in the format string: `{key}`.
                    TokenKind::Str(text) => {
                        for cap in inline_captures(text) {
                            if secret_bindings.contains(&cap) {
                                leaked = Some(cap);
                            }
                        }
                    }
                    // Positional/named args naming a secret binding.
                    TokenKind::Ident(id) if secret_bindings.contains(id) => {
                        leaked = Some(id.clone());
                    }
                    // `.expose()` / `.expose_mut()` anywhere in the args.
                    TokenKind::Ident(id)
                        if cfg.expose_methods.iter().any(|m| m == id)
                            && j > 0
                            && body[j - 1].is_punct('.') =>
                    {
                        leaked = Some(format!(".{id}()"));
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(what) = leaked {
                findings.push(Finding {
                    rule: Rule::SecretFormat,
                    file: pf.path.clone(),
                    line,
                    message: format!(
                        "secret `{what}` interpolated into `{}!` — key material must \
                         never reach formatted output",
                        body[i].ident().unwrap_or("format")
                    ),
                });
            }
            i = close + 1;
        }
    }
}

/// Identifiers bound to a registry type inside one function: params
/// typed with a registry type, and `let` bindings whose declared type
/// or initializer mentions one.
fn collect_secret_bindings(
    pf: &PreparedFile,
    f: &crate::parse::FnDef,
    cfg: &Config,
) -> Vec<String> {
    let toks = &pf.lexed.tokens;
    let mut out: Vec<String> = Vec::new();

    // Parameters: scan `name : ...Type...` pairs in the signature.
    let sig = &toks[f.sig_start..f.body_start];
    let mut i = 0;
    while i + 1 < sig.len() {
        if sig[i].ident().is_some() && sig[i + 1].is_punct(':') {
            let name = sig[i].ident().unwrap_or("").to_string();
            // Type tokens run until `,` or `)` at depth 0.
            let mut depth = 0i32;
            let mut j = i + 2;
            while j < sig.len() {
                match sig[j].kind {
                    TokenKind::Punct('<') | TokenKind::Punct('(') => depth += 1,
                    TokenKind::Punct('>') | TokenKind::Punct(')') if depth > 0 => depth -= 1,
                    TokenKind::Punct(',') | TokenKind::Punct(')') => break,
                    _ => {}
                }
                if let Some(id) = sig[j].ident() {
                    if is_secret_type(cfg, id) {
                        out.push(name.clone());
                    }
                }
                j += 1;
            }
            i = j;
        } else {
            i += 1;
        }
    }

    // Let bindings: `let [mut] name [: Type] = init ;` — secret if the
    // type annotation or the initializer mentions a registry type.
    let body = &toks[f.body_start..f.body_end];
    let mut i = 0;
    while i < body.len() {
        if !body[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < body.len() && body[j].is_ident("mut") {
            j += 1;
        }
        let Some(name) = body.get(j).and_then(|t| t.ident().map(str::to_string)) else {
            i += 1;
            continue;
        };
        // Scan to the statement end, looking for registry mentions.
        let mut secret = false;
        let mut k = j + 1;
        let mut depth = 0i32;
        while k < body.len() {
            match body[k].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => depth -= 1,
                TokenKind::Punct(';') if depth <= 0 => break,
                _ => {}
            }
            if let Some(id) = body[k].ident() {
                if is_secret_type(cfg, id) {
                    secret = true;
                }
            }
            k += 1;
        }
        if secret {
            out.push(name);
        }
        i = k + 1;
    }
    out
}

/// For each registry struct, every raw byte field (`[u8; N]` or
/// `Vec<u8>`) must be named by some `zeroize(...)` call in the crate,
/// or be of a self-zeroizing registry type.
fn check_zeroize_coverage(
    pf: &PreparedFile,
    all: &[PreparedFile],
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    // The crate root is the path up to `/src/`; zeroize coverage
    // anywhere in the same crate counts.
    let crate_root = pf.path.split("/src/").next().unwrap_or("").to_string();
    let crate_files: Vec<&PreparedFile> = all
        .iter()
        .filter(|other| other.path.split("/src/").next().unwrap_or("") == crate_root)
        .collect();
    let zeroized: Vec<String> = crate_files
        .iter()
        .flat_map(|other| zeroize_arguments(other))
        .collect();

    for s in &pf.shape.structs {
        if s.in_test || !is_secret_type(cfg, &s.name) {
            continue;
        }
        // A method of the struct wiping through `self` (the Drop-impl
        // idiom, `zeroize(&mut self.0)`) covers every field — tuple
        // fields have no nameable identifier for the per-field check.
        if self_zeroizing(&crate_files, &s.name) {
            continue;
        }
        for field in &s.fields {
            let raw_bytes = field.type_idents.iter().any(|t| t == "u8");
            if !raw_bytes {
                continue;
            }
            // Self-zeroizing container types are already covered.
            if field.type_idents.iter().any(|t| is_secret_type(cfg, t)) {
                continue;
            }
            if !zeroized.contains(&field.name) {
                findings.push(Finding {
                    rule: Rule::SecretZeroize,
                    file: pf.path.clone(),
                    line: field.line,
                    message: format!(
                        "`{}.{}` holds raw key bytes but no `zeroize(...)` call in \
                         this crate names it — a gap on the drop/shred path",
                        s.name, field.name
                    ),
                });
            }
        }
    }
}

/// Whether any method with `impl_type == name` calls `zeroize(...)`
/// with `self` among the arguments (a self-wiping Drop or shred
/// method).
fn self_zeroizing(crate_files: &[&PreparedFile], name: &str) -> bool {
    for pf in crate_files {
        for f in &pf.shape.fns {
            if f.in_test || f.impl_type.as_deref() != Some(name) {
                continue;
            }
            let body = &pf.lexed.tokens[f.body_start..f.body_end];
            let mut i = 0;
            while i + 1 < body.len() {
                if body[i].is_ident("zeroize") && body[i + 1].is_punct('(') {
                    let close = matching(body, i + 1, body.len());
                    if body[i + 2..close].iter().any(|t| t.is_ident("self")) {
                        return true;
                    }
                    i = close + 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    false
}

/// Field identifiers appearing inside `zeroize(...)` call arguments
/// anywhere in a file (`zeroize(&mut slot.wrapped)` → `wrapped`).
fn zeroize_arguments(pf: &PreparedFile) -> Vec<String> {
    let toks = &pf.lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_ident("zeroize") && toks[i + 1].is_punct('(') {
            let close = matching(toks, i + 1, toks.len());
            for t in &toks[i + 2..close] {
                if let Some(id) = t.ident() {
                    out.push(id.to_string());
                }
            }
            i = close + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Parses `{name}` / `{name:?}` inline captures out of a format
/// string; `{{` escapes and positional `{}` / `{0}` are skipped.
fn inline_captures(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            if bytes.get(i + 1) == Some(&b'{') {
                i += 2;
                continue;
            }
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != b'}' && bytes[j] != b':' {
                j += 1;
            }
            let name = &text[i + 1..j];
            if !name.is_empty()
                && name.chars().all(|c| c.is_alphanumeric() || c == '_')
                && !name.chars().next().is_some_and(|c| c.is_ascii_digit())
            {
                out.push(name.to_string());
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_capture_parsing() {
        assert_eq!(
            inline_captures("value {key:?} and {other}"),
            ["key", "other"]
        );
        assert!(inline_captures("{{escaped}} {} {0}").is_empty());
        assert_eq!(inline_captures("{a}{b}"), ["a", "b"]);
    }
}
