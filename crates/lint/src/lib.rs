//! `vdisk-lint`: in-tree static analysis for the vdisk workspace.
//!
//! Three analyses run over the workspace source, fed by a small
//! hand-rolled lexer (no `syn`, no registry dependencies — the same
//! offline discipline as the proptest/criterion shims):
//!
//! 1. **Secret hygiene** ([`secrets`]): a registry of secret-bearing
//!    types for which `#[derive(Debug)]`/`#[derive(Clone)]`,
//!    format-macro interpolation, and missing `zeroize` coverage on
//!    raw key-byte fields are violations.
//! 2. **Panic freedom** ([`panics`]): `.unwrap()`, `.expect(...)`,
//!    `panic!`, `unreachable!`, `todo!`, `unimplemented!` and direct
//!    slice indexing are denied inside the designated hot-path
//!    modules (shard workers, queues, the rekey driver, the tenant
//!    runtime). `#[cfg(test)]` code is exempt; the
//!    `unwrap_or_else(PoisonError::into_inner)` poison-recovery idiom
//!    is recognized as safe (it is not an `unwrap`).
//! 3. **Lock order** ([`locks`]): guard-acquisition sites per
//!    function, an approximate intra-workspace call graph by name
//!    resolution over the token stream, and cycle detection over the
//!    resulting lock-order graph, reported with a DOT artifact.
//!
//! Violations are suppressed inline with
//! `// vdisk-lint: allow(<rule>) reason="..."` — a bare allow without
//! a reason is itself a violation ([`Rule::LintAllow`]).

pub mod lexer;
pub mod locks;
pub mod panics;
pub mod parse;
pub mod report;
pub mod secrets;

use lexer::Lexed;
use parse::FileShape;

/// One source file handed to the analyses. Paths are workspace-relative
/// with forward slashes; the hot-path registry matches on suffixes.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path (`crates/rados/src/queue.rs`).
    pub path: String,
    /// Full source text.
    pub text: String,
}

/// The analysis configuration: registries the rules consult.
/// [`Config::default`] is the product registry this repo is linted
/// with; fixtures construct their own.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path fragments designating panic-free hot-path modules. A file
    /// is hot when its path contains any of these.
    pub hot_paths: Vec<String>,
    /// Type names whose values carry key material. Deriving
    /// `Debug`/`Clone` on them (or on structs embedding them) and
    /// interpolating them into format macros are violations.
    pub secret_types: Vec<String>,
    /// Method names that expose raw secret bytes (flagged inside
    /// format macros regardless of binding knowledge).
    pub expose_methods: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            hot_paths: vec![
                "rados/src/queue.rs".into(),
                "rados/src/shard.rs".into(),
                "rados/src/cluster.rs".into(),
                "rbd/src/queue.rs".into(),
                "core/src/queue.rs".into(),
                "core/src/rekey.rs".into(),
                "core/src/runtime/".into(),
            ],
            secret_types: vec![
                "SecretBytes".into(),
                "Keyslot".into(),
                "EpochRecord".into(),
                "RetiredKey".into(),
                "LuksHeader".into(),
                "DerivedKeys".into(),
                "KeyChain".into(),
                "SectorCodec".into(),
            ],
            expose_methods: vec!["expose".into(), "expose_mut".into()],
        }
    }
}

/// The rules findings are attributed to (and allow comments name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `#[derive(Debug)]`/`#[derive(Clone)]` on a secret-bearing type.
    SecretDerive,
    /// A secret interpolated into a format-like macro.
    SecretFormat,
    /// A raw key-byte field with no `zeroize` coverage on any
    /// drop/shred path.
    SecretZeroize,
    /// `.unwrap()`/`.expect()`/`panic!`-family in a hot-path module.
    HotPathPanic,
    /// Direct slice/array indexing in a hot-path module.
    HotPathIndex,
    /// A lock-order cycle (or a malformed lock annotation).
    LockOrder,
    /// A malformed allow directive (no reason, or an unknown rule).
    LintAllow,
}

impl Rule {
    /// The rule's stable name, as written in allow directives.
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::SecretDerive => "secret-derive",
            Rule::SecretFormat => "secret-format",
            Rule::SecretZeroize => "secret-zeroize",
            Rule::HotPathPanic => "hot-path-panic",
            Rule::HotPathIndex => "hot-path-index",
            Rule::LockOrder => "lock-order",
            Rule::LintAllow => "lint-allow",
        }
    }

    /// Parses a rule name from an allow directive.
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "secret-derive" => Some(Rule::SecretDerive),
            "secret-format" => Some(Rule::SecretFormat),
            "secret-zeroize" => Some(Rule::SecretZeroize),
            "hot-path-panic" => Some(Rule::HotPathPanic),
            "hot-path-index" => Some(Rule::HotPathIndex),
            "lock-order" => Some(Rule::LockOrder),
            "lint-allow" => Some(Rule::LintAllow),
            _ => None,
        }
    }
}

/// One violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule violated.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// One parsed `vdisk-lint: allow(...)` directive.
#[derive(Debug, Clone)]
struct AllowDirective {
    rules: Vec<Rule>,
    has_reason: bool,
    /// Lines this directive covers: its own line (trailing-comment
    /// form) or the first following line that carries code
    /// (comment-above form).
    covered: Vec<usize>,
}

/// The result of analyzing a set of sources.
#[derive(Debug)]
pub struct Analysis {
    /// Surviving findings (allow-suppressed ones removed), sorted by
    /// file then line.
    pub findings: Vec<Finding>,
    /// The lock-order graph (for DOT/report rendering even when
    /// acyclic).
    pub lock_graph: locks::LockGraph,
    /// Files scanned.
    pub files_scanned: usize,
    /// Allow directives that suppressed at least one finding.
    pub allows_used: usize,
}

/// One lexed+parsed file, shared by the analyses.
pub struct PreparedFile {
    pub path: String,
    pub lexed: Lexed,
    pub shape: FileShape,
    pub is_hot: bool,
}

/// Runs every analysis over `files` and applies allow directives.
pub fn analyze(files: &[SourceFile], cfg: &Config) -> Analysis {
    let prepared: Vec<PreparedFile> = files
        .iter()
        .map(|f| {
            let lexed = lexer::lex(&f.text);
            let shape = parse::parse(&lexed.tokens);
            let is_hot = cfg.hot_paths.iter().any(|h| f.path.contains(h.as_str()));
            PreparedFile {
                path: f.path.clone(),
                lexed,
                shape,
                is_hot,
            }
        })
        .collect();

    // Directives are parsed first: `allow(lock-order)` sites must
    // remove their edges from the lock graph *before* cycle
    // detection, not merely hide a cycle finding after the fact.
    let mut directive_findings: Vec<Finding> = Vec::new();
    let mut per_file: std::collections::HashMap<&str, Vec<AllowDirective>> =
        std::collections::HashMap::new();
    let mut lock_allowed: locks::AllowedSites = Default::default();
    for pf in &prepared {
        let dirs = parse_directives(pf, &mut directive_findings);
        for d in &dirs {
            if d.has_reason && d.rules.contains(&Rule::LockOrder) {
                for &line in &d.covered {
                    lock_allowed.insert((pf.path.clone(), line));
                }
            }
        }
        per_file.insert(pf.path.as_str(), dirs);
    }

    let mut findings: Vec<Finding> = Vec::new();
    for pf in &prepared {
        findings.extend(secrets::check(pf, &prepared, cfg));
        findings.extend(panics::check(pf));
    }
    let lock_graph = locks::analyze(&prepared, &lock_allowed);
    findings.extend(lock_graph.findings.clone());

    // Apply line-level suppression to the remaining findings.
    let mut allows_used = 0usize;
    let mut kept: Vec<Finding> = Vec::new();
    for finding in findings {
        let suppressed = per_file.get(finding.file.as_str()).is_some_and(|dirs| {
            dirs.iter().any(|d| {
                d.has_reason && d.rules.contains(&finding.rule) && d.covered.contains(&finding.line)
            })
        });
        if suppressed {
            allows_used += 1;
        } else {
            kept.push(finding);
        }
    }
    kept.extend(directive_findings);
    kept.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    Analysis {
        findings: kept,
        lock_graph,
        files_scanned: prepared.len(),
        allows_used,
    }
}

/// Parses every `vdisk-lint:` comment in a file. Malformed directives
/// (bare allow without a reason, unknown rule names) are reported as
/// [`Rule::LintAllow`] findings — and those are never suppressible by
/// the directive that carries them.
fn parse_directives(pf: &PreparedFile, findings: &mut Vec<Finding>) -> Vec<AllowDirective> {
    let mut dirs = Vec::new();
    for comment in &pf.lexed.comments {
        let text = comment.text.trim();
        let Some(rest) = text.strip_prefix("vdisk-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let Some(args_start) = rest.strip_prefix("allow") else {
            findings.push(Finding {
                rule: Rule::LintAllow,
                file: pf.path.clone(),
                line: comment.line,
                message: format!("unrecognized vdisk-lint directive: `{text}`"),
            });
            continue;
        };
        let args_start = args_start.trim_start();
        let Some(close) = args_start.find(')') else {
            findings.push(Finding {
                rule: Rule::LintAllow,
                file: pf.path.clone(),
                line: comment.line,
                message: "allow directive is missing its rule list: `allow(<rule>)`".into(),
            });
            continue;
        };
        let inner = args_start
            .strip_prefix('(')
            .map(|s| &s[..close.saturating_sub(1)])
            .unwrap_or("");
        let mut rules = Vec::new();
        let mut bad_rule = false;
        for name in inner.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match Rule::parse(name) {
                Some(r) => rules.push(r),
                None => {
                    bad_rule = true;
                    findings.push(Finding {
                        rule: Rule::LintAllow,
                        file: pf.path.clone(),
                        line: comment.line,
                        message: format!("allow names unknown rule `{name}`"),
                    });
                }
            }
        }
        let tail = &args_start[close + 1..];
        let has_reason = match tail.trim_start().strip_prefix("reason=") {
            Some(r) => {
                let r = r.trim();
                r.starts_with('"') && r.trim_end().len() > 2
            }
            None => false,
        };
        if !has_reason {
            findings.push(Finding {
                rule: Rule::LintAllow,
                file: pf.path.clone(),
                line: comment.line,
                message: "bare allow without a written reason (use `allow(<rule>) reason=\"...\"`)"
                    .into(),
            });
        }
        if rules.is_empty() && !bad_rule {
            findings.push(Finding {
                rule: Rule::LintAllow,
                file: pf.path.clone(),
                line: comment.line,
                message: "allow directive names no rules".into(),
            });
        }
        // Trailing form (`code(); // vdisk-lint: allow(...)`) covers
        // its own line; comment-above form covers the next line that
        // carries a code token.
        let trailing = pf.lexed.tokens.iter().any(|t| t.line == comment.line);
        let covered = if trailing {
            vec![comment.line]
        } else {
            pf.lexed
                .tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > comment.line)
                .map(|l| vec![l])
                .unwrap_or_default()
        };
        dirs.push(AllowDirective {
            rules,
            has_reason,
            covered,
        });
    }
    dirs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for rule in [
            Rule::SecretDerive,
            Rule::SecretFormat,
            Rule::SecretZeroize,
            Rule::HotPathPanic,
            Rule::HotPathIndex,
            Rule::LockOrder,
            Rule::LintAllow,
        ] {
            assert_eq!(Rule::parse(rule.as_str()), Some(rule));
        }
        assert_eq!(Rule::parse("nonsense"), None);
    }
}
