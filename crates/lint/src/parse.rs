//! A tolerant item-level parser over the token stream: structs with
//! their derives and field types, functions with their body spans and
//! enclosing impl types, and `#[cfg(test)]` regions. No expression
//! grammar — the analyses walk raw tokens inside function bodies.

use crate::lexer::{Token, TokenKind};

/// One `#[...]` attribute, flattened to its identifier list.
#[derive(Debug, Clone)]
pub struct Attr {
    /// Every identifier appearing inside the attribute, in order
    /// (`derive(Debug, Clone)` → `["derive", "Debug", "Clone"]`).
    pub idents: Vec<String>,
    /// Line of the opening `#`.
    pub line: usize,
}

impl Attr {
    /// Whether this is `#[derive(...)]` naming `what`.
    pub fn derives(&self, what: &str) -> bool {
        self.idents.first().is_some_and(|h| h == "derive")
            && self.idents.iter().skip(1).any(|i| i == what)
    }

    /// Whether this attribute mentions `cfg` and `test` (covers
    /// `#[cfg(test)]` and `#[cfg(all(test, ...))]`).
    pub fn is_cfg_test(&self) -> bool {
        self.idents.first().is_some_and(|h| h == "cfg") && self.idents.iter().any(|i| i == "test")
    }

    /// Whether this is `#[test]`.
    pub fn is_test(&self) -> bool {
        self.idents.len() == 1 && self.idents[0] == "test"
    }
}

/// One struct (or enum) field: name and the raw type tokens.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name (tuple fields get positional names `"0"`, `"1"`...).
    pub name: String,
    /// Identifiers appearing in the field's type (`Vec`, `u8`, ...).
    pub type_idents: Vec<String>,
    /// Line the field is declared on.
    pub line: usize,
}

/// One struct or enum item.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// Attributes (derives among them).
    pub attrs: Vec<Attr>,
    /// Named or tuple fields; for enums, every variant's payload
    /// fields flattened together.
    pub fields: Vec<Field>,
    /// Line of the `struct`/`enum` keyword.
    pub line: usize,
    /// Whether the item sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// One function with its body's token span.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// The enclosing `impl` type name, if any (`Shard` for
    /// `impl Shard { fn lock... }`).
    pub impl_type: Option<String>,
    /// Token index of the body's opening `{`.
    pub body_start: usize,
    /// Token index one past the body's closing `}`.
    pub body_end: usize,
    /// Token index where the signature starts (at `fn`).
    pub sig_start: usize,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Whether the fn sits inside a `#[cfg(test)]` region or carries
    /// `#[test]`/`#[cfg(test)]` itself.
    pub in_test: bool,
}

/// Parsed shape of one source file.
#[derive(Debug, Default)]
pub struct FileShape {
    /// All structs and enums.
    pub structs: Vec<StructDef>,
    /// All functions (free and method).
    pub fns: Vec<FnDef>,
    /// 1-indexed line ranges (inclusive) covered by `#[cfg(test)]`
    /// items — used to exempt test code from hot-path rules.
    pub test_line_ranges: Vec<(usize, usize)>,
}

impl FileShape {
    /// Whether a line falls inside any `#[cfg(test)]` region.
    pub fn line_in_test(&self, line: usize) -> bool {
        self.test_line_ranges
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }
}

/// Parses the item structure of one token stream.
pub fn parse(tokens: &[Token]) -> FileShape {
    let mut shape = FileShape::default();
    scan_items(tokens, 0, tokens.len(), None, false, &mut shape);
    shape
}

/// Index of the matching closer for the opener at `open` (which must
/// be `(`, `[` or `{`), or `end` if unbalanced.
pub fn matching(tokens: &[Token], open: usize, end: usize) -> usize {
    let (o, c) = match tokens[open].kind {
        TokenKind::Punct('(') => ('(', ')'),
        TokenKind::Punct('[') => ('[', ']'),
        TokenKind::Punct('{') => ('{', '}'),
        _ => return open,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        if tokens[i].is_punct(o) {
            depth += 1;
        } else if tokens[i].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    end
}

/// Recursive item scanner. `impl_type` is the enclosing impl's type
/// name; `in_test` marks an enclosing `#[cfg(test)]` region.
fn scan_items(
    tokens: &[Token],
    mut i: usize,
    end: usize,
    impl_type: Option<&str>,
    in_test: bool,
    shape: &mut FileShape,
) {
    while i < end {
        // Gather attributes preceding the next item.
        let mut attrs: Vec<Attr> = Vec::new();
        while i < end && tokens[i].is_punct('#') {
            let mut j = i + 1;
            // Inner attributes (`#![...]`) configure the enclosing
            // scope; treat them like outer ones for cfg(test).
            if j < end && tokens[j].is_punct('!') {
                j += 1;
            }
            if j < end && tokens[j].is_punct('[') {
                let close = matching(tokens, j, end);
                let idents = tokens[j + 1..close]
                    .iter()
                    .filter_map(|t| t.ident().map(str::to_string))
                    .collect();
                attrs.push(Attr {
                    idents,
                    line: tokens[i].line,
                });
                i = close + 1;
            } else {
                i += 1;
            }
        }
        // Visibility and qualifiers sit between the attributes and the
        // item keyword (`pub(crate) unsafe fn ...`); skip them so the
        // attrs stay attached to the item.
        while i < end {
            if tokens[i].is_ident("pub") {
                i += 1;
                if i < end && tokens[i].is_punct('(') {
                    i = matching(tokens, i, end) + 1;
                }
            } else if tokens[i].is_ident("unsafe") || tokens[i].is_ident("async") {
                i += 1;
            } else {
                break;
            }
        }
        if i >= end {
            break;
        }
        let item_test = in_test || attrs.iter().any(|a| a.is_cfg_test() || a.is_test());

        match tokens[i].ident() {
            Some("struct") | Some("enum") | Some("union") if i + 1 < end => {
                let name = tokens[i + 1].ident().unwrap_or("").to_string();
                let line = tokens[i].line;
                // Find the body `{`, a tuple `(`, or a terminating `;`,
                // skipping generics.
                let mut j = i + 2;
                let mut fields = Vec::new();
                let mut angle = 0i32;
                while j < end {
                    match &tokens[j].kind {
                        TokenKind::Punct('<') => angle += 1,
                        TokenKind::Punct('>') => angle -= 1,
                        TokenKind::Punct(';') if angle <= 0 => {
                            j += 1;
                            break;
                        }
                        TokenKind::Punct('(') if angle <= 0 => {
                            let close = matching(tokens, j, end);
                            fields = tuple_fields(&tokens[j + 1..close]);
                            for f in &mut fields {
                                f.line = tokens[j].line;
                            }
                            j = close + 1;
                            // A tuple struct still ends with `;` (skip
                            // any where clause on the way).
                            while j < end && !tokens[j].is_punct(';') {
                                j += 1;
                            }
                            j += 1;
                            break;
                        }
                        TokenKind::Punct('{') if angle <= 0 => {
                            let close = matching(tokens, j, end);
                            fields = named_fields(tokens, j + 1, close);
                            j = close + 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                shape.structs.push(StructDef {
                    name,
                    attrs,
                    fields,
                    line,
                    in_test: item_test,
                });
                i = j;
            }
            Some("fn") if i + 1 < end => {
                let name = tokens[i + 1].ident().unwrap_or("").to_string();
                let line = tokens[i].line;
                // Body opens at the first `{` outside parens/brackets.
                let mut j = i + 2;
                let mut body = None;
                while j < end {
                    match tokens[j].kind {
                        TokenKind::Punct('(') | TokenKind::Punct('[') => {
                            j = matching(tokens, j, end) + 1;
                        }
                        TokenKind::Punct('{') => {
                            body = Some(j);
                            break;
                        }
                        TokenKind::Punct(';') => break, // trait decl
                        _ => j += 1,
                    }
                }
                if let Some(open) = body {
                    let close = matching(tokens, open, end);
                    let fd = FnDef {
                        name,
                        impl_type: impl_type.map(str::to_string),
                        body_start: open,
                        body_end: (close + 1).min(end),
                        sig_start: i,
                        line,
                        in_test: item_test,
                    };
                    if item_test && !in_test {
                        mark_test_range(tokens, i, close, shape);
                    }
                    shape.fns.push(fd);
                    i = (close + 1).min(end);
                } else {
                    i = j + 1;
                }
            }
            Some("impl") | Some("trait") => {
                let kw = tokens[i].ident().unwrap_or("");
                // Type name: the last plain ident before `{` (after
                // `for`, if present), skipping generics.
                let mut j = i + 1;
                let mut ty: Option<String> = None;
                let mut after_for = false;
                let mut angle = 0i32;
                while j < end && !tokens[j].is_punct('{') {
                    match &tokens[j].kind {
                        TokenKind::Punct('<') => angle += 1,
                        TokenKind::Punct('>') => angle -= 1,
                        TokenKind::Ident(id) if id == "for" && angle <= 0 => {
                            after_for = true;
                            ty = None;
                        }
                        TokenKind::Ident(id) if id == "where" && angle <= 0 => break,
                        TokenKind::Ident(id) if angle <= 0 => {
                            ty = Some(id.clone());
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let _ = after_for;
                while j < end && !tokens[j].is_punct('{') {
                    j += 1;
                }
                if j < end {
                    let close = matching(tokens, j, end);
                    if item_test && !in_test {
                        mark_test_range(tokens, i, close, shape);
                    }
                    let ty_name = if kw == "trait" {
                        tokens[i + 1].ident().map(str::to_string)
                    } else {
                        ty
                    };
                    scan_items(tokens, j + 1, close, ty_name.as_deref(), item_test, shape);
                    i = close + 1;
                } else {
                    i = j;
                }
            }
            Some("mod") if i + 1 < end => {
                let mut j = i + 2;
                while j < end && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                    j += 1;
                }
                if j < end && tokens[j].is_punct('{') {
                    let close = matching(tokens, j, end);
                    if item_test && !in_test {
                        mark_test_range(tokens, i, close, shape);
                    }
                    scan_items(tokens, j + 1, close, None, item_test, shape);
                    i = close + 1;
                } else {
                    i = j + 1;
                }
            }
            Some("macro_rules") => {
                // macro_rules! name { ... } — skip the whole body.
                let mut j = i + 1;
                while j < end && !tokens[j].is_punct('{') {
                    j += 1;
                }
                i = if j < end {
                    matching(tokens, j, end) + 1
                } else {
                    j
                };
            }
            Some("const") | Some("static") | Some("type") | Some("use") | Some("extern") => {
                // Skip to the terminating `;`, ignoring nested
                // brackets (array initializers, use trees).
                let mut j = i + 1;
                while j < end {
                    match tokens[j].kind {
                        TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                            j = matching(tokens, j, end) + 1;
                        }
                        TokenKind::Punct(';') => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                i = j;
            }
            _ => i += 1,
        }
    }
}

/// Records lines `tokens[from]..=tokens[to]` as a cfg(test) region.
fn mark_test_range(tokens: &[Token], from: usize, to: usize, shape: &mut FileShape) {
    let a = tokens[from].line;
    let b = tokens[to.min(tokens.len() - 1)].line;
    shape.test_line_ranges.push((a, b));
}

/// Parses `name: Type, ...` entries between a struct body's braces.
fn named_fields(tokens: &[Token], start: usize, end: usize) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = start;
    while i < end {
        // Skip attributes and visibility.
        while i < end && tokens[i].is_punct('#') {
            let mut j = i + 1;
            if j < end && tokens[j].is_punct('[') {
                j = matching(tokens, j, end) + 1;
            }
            i = j;
        }
        if i < end && tokens[i].is_ident("pub") {
            i += 1;
            if i < end && tokens[i].is_punct('(') {
                i = matching(tokens, i, end) + 1;
            }
        }
        // Expect `name :`.
        let (name, line) = match (tokens.get(i), tokens.get(i + 1)) {
            (Some(t), Some(c)) if t.ident().is_some() && c.is_punct(':') => {
                (t.ident().unwrap_or("").to_string(), t.line)
            }
            _ => break,
        };
        i += 2;
        // Type runs to the next comma at angle/paren depth 0.
        let mut angle = 0i32;
        let mut type_idents = Vec::new();
        while i < end {
            match &tokens[i].kind {
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') => angle -= 1,
                TokenKind::Punct('(') | TokenKind::Punct('[') => {
                    for t in &tokens[i + 1..matching(tokens, i, end)] {
                        if let Some(id) = t.ident() {
                            type_idents.push(id.to_string());
                        }
                    }
                    i = matching(tokens, i, end);
                }
                TokenKind::Punct(',') if angle <= 0 => break,
                TokenKind::Ident(id) => type_idents.push(id.clone()),
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma
        fields.push(Field {
            name,
            type_idents,
            line,
        });
    }
    fields
}

/// Parses tuple-struct fields (`(A, B)`): positional names.
fn tuple_fields(tokens: &[Token]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut current: Vec<String> = Vec::new();
    for t in tokens {
        match &t.kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            TokenKind::Punct('(') | TokenKind::Punct('[') => paren += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => paren -= 1,
            TokenKind::Punct(',') if angle <= 0 && paren <= 0 => {
                fields.push(Field {
                    name: fields.len().to_string(),
                    type_idents: std::mem::take(&mut current),
                    line: t.line,
                });
            }
            TokenKind::Ident(id) if id != "pub" => current.push(id.clone()),
            _ => {}
        }
    }
    if !current.is_empty() {
        fields.push(Field {
            name: fields.len().to_string(),
            type_idents: current,
            line: tokens.first().map_or(0, |t| t.line),
        });
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn shape_of(src: &str) -> FileShape {
        parse(&lex(src).tokens)
    }

    #[test]
    fn structs_carry_derives_and_fields() {
        let s = shape_of(
            "#[derive(Debug, Clone)]\npub struct Key { pub wrapped: [u8; 64], salt: Vec<u8>, n: u32 }",
        );
        assert_eq!(s.structs.len(), 1);
        let k = &s.structs[0];
        assert_eq!(k.name, "Key");
        assert!(k.attrs[0].derives("Debug") && k.attrs[0].derives("Clone"));
        assert!(!k.attrs[0].derives("Copy"));
        assert_eq!(k.fields.len(), 3);
        assert_eq!(k.fields[0].name, "wrapped");
        assert!(k.fields[0].type_idents.contains(&"u8".to_string()));
        assert!(k.fields[1].type_idents.contains(&"Vec".to_string()));
        assert!(!k.fields[2].type_idents.contains(&"u8".to_string()));
    }

    #[test]
    fn generic_fields_keep_commas_straight() {
        let s = shape_of("struct M { map: BTreeMap<u32, SectorCodec>, next: u32 }");
        assert_eq!(s.structs[0].fields.len(), 2);
        assert!(s.structs[0].fields[0]
            .type_idents
            .contains(&"SectorCodec".to_string()));
    }

    #[test]
    fn fns_know_their_impl_type() {
        let s = shape_of(
            "impl Shard { fn lock(&self) -> MutexGuard<'_, State> { self.state.lock() } }\nfn free() {}",
        );
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.fns[0].name, "lock");
        assert_eq!(s.fns[0].impl_type.as_deref(), Some("Shard"));
        assert_eq!(s.fns[1].impl_type, None);
    }

    #[test]
    fn impl_trait_for_type_names_the_type() {
        let s = shape_of("impl Drop for SecretBytes { fn drop(&mut self) {} }");
        assert_eq!(s.fns[0].impl_type.as_deref(), Some("SecretBytes"));
    }

    #[test]
    fn cfg_test_regions_cover_mods_and_fns() {
        let src = "fn hot() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn helper() { y.unwrap(); }\n}";
        let s = shape_of(src);
        assert!(!s.line_in_test(1));
        assert!(s.line_in_test(4));
        let helper = s.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(helper.in_test);
        assert!(!s.fns.iter().find(|f| f.name == "hot").unwrap().in_test);
    }

    #[test]
    fn cfg_test_on_single_fn() {
        let s = shape_of("#[cfg(test)]\nfn probe() { x.unwrap(); }");
        assert!(s.fns[0].in_test);
        assert!(s.line_in_test(2));
    }

    #[test]
    fn const_arrays_do_not_derail_items() {
        let s = shape_of("const T: [u8; 4] = [1, 2, 3, 4];\nstruct After { a: u8 }");
        assert_eq!(s.structs.len(), 1);
        assert_eq!(s.structs[0].name, "After");
    }
}
