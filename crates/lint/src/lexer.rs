//! A small hand-rolled Rust lexer: just enough token structure for the
//! analyses in this crate, in the same no-dependency spirit as the
//! in-tree proptest/criterion shims.
//!
//! The scanner understands comments (line, block, doc), string
//! literals (cooked, raw, byte), char literals vs lifetimes, numbers,
//! identifiers, and single-character punctuation. Comments are not
//! emitted as tokens — they are collected separately with their line
//! numbers so the allow-directive layer can match them against
//! findings without the analyses ever seeing them.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-indexed source line the token starts on.
    pub line: usize,
}

/// The token classes the analyses care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `struct`, `unwrap`, ...).
    Ident(String),
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime(String),
    /// One punctuation character (`.`, `!`, `[`, `{`, ...). Multi-char
    /// operators arrive as consecutive tokens.
    Punct(char),
    /// A string literal (cooked, raw, or byte); the unquoted text.
    Str(String),
    /// A char or byte literal.
    Char,
    /// A numeric literal.
    Num,
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// Whether this token is the given identifier/keyword.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(t) if t == s)
    }
}

/// A comment captured during lexing (the directive layer's input).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//`/`/*` framing.
    pub text: String,
    /// 1-indexed line the comment starts on.
    pub line: usize,
}

/// The output of [`lex`]: code tokens plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments (line, block, and doc) in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Tolerant by design: unterminated constructs
/// consume to end of input rather than failing, so a half-edited file
/// still yields findings for the part that scans.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    text: src[start..j].to_string(),
                    line,
                });
                i = j;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1;
                let mut j = start;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        if bytes[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    text: src[start..end].to_string(),
                    line: start_line,
                });
                i = j;
            }
            '"' => {
                let (text, next, newlines) = cooked_string(src, i + 1);
                out.tokens.push(Token {
                    kind: TokenKind::Str(text),
                    line,
                });
                line += newlines;
                i = next;
            }
            'r' | 'b' if raw_string_start(bytes, i).is_some() => {
                // r"...", r#"..."#, b"...", br#"..."# and friends.
                let (hash_count, body_start) = raw_string_start(bytes, i).unwrap_or((0, i + 1));
                let closer = format!("\"{}", "#".repeat(hash_count));
                let rest = &src[body_start..];
                let (text, consumed) = match rest.find(&closer) {
                    Some(pos) => (rest[..pos].to_string(), pos + closer.len()),
                    None => (rest.to_string(), rest.len()),
                };
                let newlines = text.matches('\n').count();
                out.tokens.push(Token {
                    kind: TokenKind::Str(text),
                    line,
                });
                line += newlines;
                i = body_start + consumed;
            }
            '\'' => {
                // Lifetime, label, or char literal. A lifetime is 'ident
                // NOT followed by a closing quote; 'a' is a char.
                let mut j = i + 1;
                while j < bytes.len() && ((bytes[j] as char).is_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                if j > i + 1 && bytes.get(j) != Some(&b'\'') {
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime(src[i + 1..j].to_string()),
                        line,
                    });
                    i = j;
                } else {
                    let next = char_literal_end(bytes, i + 1);
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        line,
                    });
                    i = next;
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_alphanumeric()
                        || bytes[j] == b'_'
                        || bytes[j] == b'.'
                            && bytes
                                .get(j + 1)
                                .is_some_and(|n| (*n as char).is_ascii_digit()))
                {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Num,
                    line,
                });
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let (ident, next) = ident_at(src, i);
                out.tokens.push(Token {
                    kind: TokenKind::Ident(ident),
                    line,
                });
                i = next;
            }
            c => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Scans a cooked string body starting just past the opening quote.
/// Returns (text, index past the closing quote, newline count).
fn cooked_string(src: &str, start: usize) -> (String, usize, usize) {
    let bytes = src.as_bytes();
    let mut j = start;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => {
                let text = src[start..j].to_string();
                let newlines = text.matches('\n').count();
                return (text, j + 1, newlines);
            }
            _ => j += 1,
        }
    }
    let text = src[start..].to_string();
    let newlines = text.matches('\n').count();
    (text, bytes.len(), newlines)
}

/// If a raw or byte string literal starts at `i` (`r"`, `r#"`, `b"`,
/// `br"`, `br#"` ...), returns `(hash_count, index of the first body
/// byte)`. `b'x'` byte chars and plain identifiers return `None` and
/// lex through the ordinary paths.
fn raw_string_start(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    let mut saw_r = false;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        saw_r = true;
        j += 1;
    }
    let mut hashes = 0;
    if saw_r {
        while bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
    }
    // A bare identifier like `result` also starts with 'r'; only an
    // opening quote right here makes this a string literal.
    if bytes.get(j) == Some(&b'"') {
        Some((hashes, j + 1))
    } else {
        None
    }
}

/// Index just past a char literal whose body starts at `start`.
fn char_literal_end(bytes: &[u8], start: usize) -> usize {
    let mut j = start;
    if bytes.get(j) == Some(&b'\\') {
        j += 2;
    } else if j < bytes.len() {
        j += 1;
    }
    // Unicode escapes and multi-byte chars: scan to the closing quote.
    while j < bytes.len() && bytes[j] != b'\'' {
        j += 1;
    }
    (j + 1).min(bytes.len())
}

/// Reads the identifier starting at `i`; returns (text, next index).
fn ident_at(src: &str, i: usize) -> (String, usize) {
    let bytes = src.as_bytes();
    let mut j = i;
    while j < bytes.len() && ((bytes[j] as char).is_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    (src[i..j].to_string(), j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn idents_and_puncts_scan() {
        let l = lex("fn main() { x.unwrap(); }");
        assert_eq!(
            idents("fn main() { x.unwrap(); }"),
            vec!["fn", "main", "x", "unwrap"]
        );
        assert!(l.tokens.iter().any(|t| t.is_punct('.')));
    }

    #[test]
    fn comments_are_side_channeled() {
        let l = lex("let a = 1; // vdisk-lint: allow(x) reason=\"y\"\nlet b = 2;");
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("vdisk-lint"));
        assert_eq!(l.comments[0].line, 1);
        // The comment's tokens never reach the analyses.
        assert!(!idents("// x.unwrap()").contains(&"unwrap".to_string()));
    }

    #[test]
    fn strings_hide_their_contents_from_token_matching() {
        let l = lex(r#"let s = "a.unwrap() // not code"; s.len();"#);
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(l
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Str(s) if s.contains("unwrap"))));
        assert!(l.comments.is_empty());
    }

    #[test]
    fn raw_strings_and_escapes() {
        let l = lex(r##"let s = r#"quote " inside"#; let t = "esc\"aped";"##);
        let strs: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(strs[0], "quote \" inside");
        assert_eq!(strs[1], "esc\\\"aped");
    }

    #[test]
    fn lifetimes_vs_chars() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| matches!(t.kind, TokenKind::Lifetime(_)))
                .count(),
            2
        );
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            2
        );
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let l = lex("let a = \"two\nlines\";\nlet b = 1;");
        let b_line = l.tokens.iter().find(|t| t.is_ident("b")).map(|t| t.line);
        assert_eq!(b_line, Some(3));
    }

    #[test]
    fn block_comments_nest() {
        let l = lex("/* outer /* inner */ still */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert!(idents("/* x */ fn f() {}").contains(&"fn".to_string()));
    }
}
