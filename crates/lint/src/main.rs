//! The `vdisk-lint` binary: walks the workspace source, runs the
//! analyses, writes the artifacts, and exits with a script-friendly
//! status:
//!
//! - `0` — clean (no violations)
//! - `1` — violations found
//! - `2` — internal error (unreadable root, artifact write failure)
//!
//! ```text
//! vdisk-lint [--root <dir>] [--out <dir>] [--quiet]
//! ```
//!
//! Artifacts land in `<out>/` (default `target/vdisk-lint/`):
//! `findings.json` (machine-readable), `lock-order.dot` (graphviz),
//! `lock-order.txt` (human lock report).

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use vdisk_lint::{analyze, report, Config, SourceFile};

struct Args {
    root: PathBuf,
    out: PathBuf,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--out" => {
                out = Some(PathBuf::from(it.next().ok_or("--out needs a directory")?));
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                return Err("usage: vdisk-lint [--root <dir>] [--out <dir>] [--quiet]".into());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let out = out.unwrap_or_else(|| root.join("target/vdisk-lint"));
    Ok(Args { root, out, quiet })
}

/// Collects every workspace `.rs` source under `crates/*/src` and
/// `src/`, skipping `target/` and integration-test trees (which are
/// exercised by the fixture suite, not production rules).
fn collect_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut roots: Vec<PathBuf> = Vec::new();
    if crates_dir.is_dir() {
        let entries = fs::read_dir(&crates_dir)
            .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    let top_src = root.join("src");
    if top_src.is_dir() {
        roots.push(top_src);
    }
    if roots.is_empty() {
        return Err(format!(
            "no source roots under {} (expected crates/*/src)",
            root.display()
        ));
    }
    roots.sort();
    for src_root in roots {
        walk(root, &src_root, &mut files)?;
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<SourceFile>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" {
                continue;
            }
            walk(root, &path, files)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile { path: rel, text });
        }
    }
    Ok(())
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let files = collect_sources(&args.root)?;
    let analysis = analyze(&files, &Config::default());

    fs::create_dir_all(&args.out)
        .map_err(|e| format!("cannot create {}: {e}", args.out.display()))?;
    let artifacts = [
        ("findings.json", report::findings_json(&analysis)),
        ("lock-order.dot", analysis.lock_graph.to_dot()),
        ("lock-order.txt", analysis.lock_graph.report()),
    ];
    for (name, content) in artifacts {
        let path = args.out.join(name);
        fs::write(&path, content).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }

    if !args.quiet {
        print!("{}", report::summary(&analysis));
        println!("artifacts: {}", args.out.display());
    }
    Ok(analysis.findings.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("vdisk-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
