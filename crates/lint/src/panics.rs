//! Hot-path panic freedom: a panicking shard worker, reactor, or
//! arbiter poisons a shard FIFO and strands every tenant, so the
//! modules on the IO submit/apply/reap path must not contain latent
//! panic sites.
//!
//! Denied inside hot-path modules (outside `#[cfg(test)]`):
//! `.unwrap()`, `.expect(...)`, `panic!`, `unreachable!`, `todo!`,
//! `unimplemented!` ([`Rule::HotPathPanic`]) and direct slice/array
//! indexing ([`Rule::HotPathIndex`]).
//!
//! Explicitly **not** flagged: the workspace's poison-recovery idiom
//! `lock().unwrap_or_else(PoisonError::into_inner)` (it is
//! `unwrap_or_else`, a non-panicking total method), `unwrap_or`,
//! `unwrap_or_default`, and `debug_assert!` (compiled out of release
//! builds, which are what production runs).

use crate::lexer::{Token, TokenKind};
use crate::{Finding, PreparedFile, Rule};

/// Macro names that unconditionally panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs the panic-freedom rules over one file (no-op unless the file
/// is in the hot-path registry).
pub fn check(pf: &PreparedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !pf.is_hot {
        return findings;
    }
    let toks = &pf.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if pf.shape.line_in_test(tok.line) {
            continue;
        }
        match &tok.kind {
            TokenKind::Ident(id) if id == "unwrap" || id == "expect" => {
                // Method-call position only: `.unwrap()` / `.expect(`.
                let is_method = i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
                if is_method {
                    findings.push(Finding {
                        rule: Rule::HotPathPanic,
                        file: pf.path.clone(),
                        line: tok.line,
                        message: format!(
                            "`.{id}()` in a hot-path module — convert to a typed error \
                             or allow with the invariant as the reason"
                        ),
                    });
                }
            }
            TokenKind::Ident(id) if PANIC_MACROS.contains(&id.as_str()) => {
                let is_macro = toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
                if is_macro {
                    findings.push(Finding {
                        rule: Rule::HotPathPanic,
                        file: pf.path.clone(),
                        line: tok.line,
                        message: format!("`{id}!` in a hot-path module"),
                    });
                }
            }
            TokenKind::Punct('[') if is_index_site(toks, i) => {
                findings.push(Finding {
                    rule: Rule::HotPathIndex,
                    file: pf.path.clone(),
                    line: tok.line,
                    message: "direct slice indexing in a hot-path module — out-of-range \
                              panics here poison queue state (use `.get()`, or allow \
                              with the structural invariant as the reason)"
                        .into(),
                });
            }
            _ => {}
        }
    }
    findings
}

/// Whether the `[` at `i` is an index expression: the previous token
/// ends an expression (identifier, `]`, or `)`). Array types
/// (`[u8; 4]`), attributes (`#[...]`), and `vec![` macro brackets all
/// fail this test.
fn is_index_site(toks: &[Token], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    match &toks[i - 1].kind {
        TokenKind::Ident(id) => {
            // `vec![`, `matches!(...)[`? — macro bang between ident and
            // bracket means the bracket is macro input, not indexing;
            // that case has `!` at i-1, not an ident, so any ident here
            // is a value expression... except keywords.
            !matches!(
                id.as_str(),
                "mut" | "ref" | "return" | "break" | "in" | "as" | "dyn" | "impl" | "where"
            )
        }
        TokenKind::Punct(']') | TokenKind::Punct(')') => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn index_site_classification() {
        let toks =
            lex("let t: [u8; 4] = x; #[derive(Debug)] let v = vec![1]; a[i]; f()[0]; m.y[1];")
                .tokens;
        let sites: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(i, t)| t.is_punct('[') && is_index_site(&toks, *i))
            .map(|(i, _)| i)
            .collect();
        // `a[`, `f()[`, and `m.y[` index; the attribute, the macro
        // bracket, and the array type do not.
        assert_eq!(sites.len(), 3);
    }
}
