//! Lock-order analysis: every guard-acquisition site per function, an
//! approximate intra-workspace call graph by name resolution over the
//! token stream, and cycle detection over the resulting lock-order
//! graph.
//!
//! **Lock classes.** A class is one `Mutex` field of one struct
//! (`Shard::state`, `ShardQueue::inner`, ...): struct fields whose
//! type mentions `Mutex` are discovered from the parsed shape. The
//! analysis is class-level, not instance-level — two different
//! `ShardQueue`s share a class, so instance self-deadlocks are out of
//! scope (self-edges are excluded from the graph) and the cycle check
//! answers the ordering question only.
//!
//! **Acquisition sites.** Direct sites are `<recv>.<field>.lock()`
//! token patterns resolved against the enclosing impl's struct (or
//! any struct in the file declaring that Mutex field). Helper methods
//! whose return type mentions `MutexGuard` (e.g. `Shard::lock`)
//! propagate their acquisitions to let-bound callers. A guard is
//! modeled as held until its enclosing block closes, or until
//! `drop(<binding>)`; un-bound temporaries release at the next `;`.
//!
//! **Call resolution.** `self.f()` prefers the enclosing file;
//! otherwise candidates named `f` are filtered by a receiver-vs-impl
//! type-name hint (`shard.lock()` → `Shard::lock`); an unhinted call
//! resolves only when the name is workspace-unique and not a common
//! std collection method. Unresolvable calls contribute no edges —
//! the approximation under-reports rather than fabricating cycles.

use crate::lexer::{Token, TokenKind};
use crate::parse::FnDef;
use crate::{Finding, PreparedFile, Rule};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Method names too generic to resolve by uniqueness alone (std
/// collection vocabulary that would alias workspace methods).
const COMMON_METHODS: &[&str] = &[
    "pop",
    "push",
    "get",
    "insert",
    "remove",
    "take",
    "wait",
    "next",
    "len",
    "iter",
    "lock",
    "drop",
    "clone",
    "new",
    "into_inner",
    "unwrap",
    "expect",
    "clear",
    "contains",
    "extend",
    "flush",
    "write",
    "read",
    "send",
    "recv",
    "min",
    "max",
    "is_empty",
    "get_mut",
    "push_back",
    "pop_front",
    "push_front",
    "pop_back",
    "first",
    "last",
    "split",
    "join",
    "find",
    "map",
];

/// One directed lock-order edge: `from` was held while `to` was
/// acquired at `site`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// The held lock class.
    pub from: String,
    /// The acquired lock class.
    pub to: String,
    /// `file:line` of the acquiring site.
    pub site: String,
    /// The function containing the site.
    pub via: String,
}

/// The lock-order graph plus everything needed to render it.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Every discovered lock class (`Struct::field (file)`).
    pub classes: Vec<String>,
    /// Deduplicated ordering edges.
    pub edges: Vec<Edge>,
    /// Cycles found (each a list of classes along the cycle).
    pub cycles: Vec<Vec<String>>,
    /// Edges dropped by `allow(lock-order)` directives.
    pub suppressed_edges: Vec<Edge>,
    /// Findings (one per cycle).
    pub findings: Vec<Finding>,
}

/// A site-level suppression: `(file, line)` pairs carrying a reasoned
/// `allow(lock-order)`.
pub type AllowedSites = BTreeSet<(String, usize)>;

struct FnInfo {
    /// Index into the global fn list.
    file: usize,
    def: FnDef,
    /// Whether the return type mentions `MutexGuard` (guard-returning
    /// helper: its acquisitions transfer to let-bound callers).
    returns_guard: bool,
}

/// Runs the analysis over every prepared file.
pub fn analyze(files: &[PreparedFile], allowed: &AllowedSites) -> LockGraph {
    // 1. Lock classes: Mutex-typed struct fields, struct-qualified.
    //    field name -> candidate classes (struct, class name) per file.
    let mut classes: Vec<String> = Vec::new();
    // (file idx, struct name, field name) -> class
    let mut field_class: HashMap<(usize, String, String), String> = HashMap::new();
    // file idx -> every Mutex field name in that file
    let mut file_fields: HashMap<usize, Vec<(String, String)>> = HashMap::new();
    for (fi, pf) in files.iter().enumerate() {
        for s in &pf.shape.structs {
            if s.in_test {
                continue;
            }
            for f in &s.fields {
                if f.type_idents.iter().any(|t| t == "Mutex") {
                    let class = format!("{}::{} ({})", s.name, f.name, short_path(&pf.path));
                    classes.push(class.clone());
                    field_class.insert((fi, s.name.clone(), f.name.clone()), class.clone());
                    file_fields
                        .entry(fi)
                        .or_default()
                        .push((f.name.clone(), class));
                }
            }
        }
    }

    // 2. Global function index: name -> [FnInfo].
    let mut fn_index: HashMap<String, Vec<usize>> = HashMap::new();
    let mut fns: Vec<FnInfo> = Vec::new();
    for (fi, pf) in files.iter().enumerate() {
        for def in &pf.shape.fns {
            if def.in_test {
                continue;
            }
            let sig = &pf.lexed.tokens[def.sig_start..def.body_start];
            let returns_guard = sig.iter().any(|t| t.is_ident("MutexGuard"));
            fn_index
                .entry(def.name.clone())
                .or_default()
                .push(fns.len());
            fns.push(FnInfo {
                file: fi,
                def: def.clone(),
                returns_guard,
            });
        }
    }

    // 3a. Pre-pass: every function's direct acquisitions, so
    //     guard-returning helpers are known before any caller that
    //     appears earlier in the file order is scanned.
    let mut direct_acquires: Vec<BTreeSet<String>> = vec![BTreeSet::new(); fns.len()];
    for (me, info) in fns.iter().enumerate() {
        let pf = &files[info.file];
        let body = &pf.lexed.tokens[info.def.body_start..info.def.body_end];
        for i in 0..body.len() {
            if let Some(class) = direct_acquire_at(body, i, info, &field_class, &file_fields) {
                direct_acquires[me].insert(class);
            }
        }
    }

    // 3b. Full scan: ordering edges, call records with held sets.
    let mut calls: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
    // (caller fn, held classes, callee fn, site line)
    let mut call_records: Vec<(usize, Vec<String>, usize, usize)> = Vec::new();
    let mut raw_edges: Vec<Edge> = Vec::new();

    for (me, info) in fns.iter().enumerate() {
        scan_body(
            me,
            info,
            files,
            &fns,
            &fn_index,
            &field_class,
            &file_fields,
            &mut direct_acquires,
            &mut calls,
            &mut call_records,
            &mut raw_edges,
        );
    }

    // 4. Transitive acquire sets by fixpoint over the call graph.
    let mut trans: Vec<BTreeSet<String>> = direct_acquires.clone();
    loop {
        let mut changed = false;
        for me in 0..fns.len() {
            let mut add: Vec<String> = Vec::new();
            for &callee in &calls[me] {
                for c in &trans[callee] {
                    if !trans[me].contains(c) {
                        add.push(c.clone());
                    }
                }
            }
            if !add.is_empty() {
                changed = true;
                trans[me].extend(add);
            }
        }
        if !changed {
            break;
        }
    }

    // 5. Interprocedural edges: held locks vs everything a callee may
    //    acquire transitively.
    for (caller, held, callee, line) in &call_records {
        for from in held {
            for to in &trans[*callee] {
                if from != to {
                    raw_edges.push(Edge {
                        from: from.clone(),
                        to: to.clone(),
                        site: format!("{}:{}", short_path(&files[fns[*caller].file].path), line),
                        via: format!("{} -> {}", fns[*caller].def.name, fns[*callee].def.name),
                    });
                }
            }
        }
    }

    // 6. Apply site-level suppressions, dedup, detect cycles.
    let mut suppressed = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    for e in raw_edges {
        let site_key = site_to_key(&e.site, files);
        if site_key.is_some_and(|k| allowed.contains(&k)) {
            suppressed.push(e);
        } else {
            edges.push(e);
        }
    }
    edges.sort();
    edges.dedup_by(|a, b| a.from == b.from && a.to == b.to && a.site == b.site);
    classes.sort();
    classes.dedup();

    let cycles = find_cycles(&classes, &edges);
    let mut findings = Vec::new();
    for cycle in &cycles {
        // Anchor the finding at the first contributing edge's site.
        let site = edges
            .iter()
            .find(|e| cycle.contains(&e.from) && cycle.contains(&e.to))
            .map(|e| e.site.clone())
            .unwrap_or_default();
        let (file, line) = split_site(&site, files);
        findings.push(Finding {
            rule: Rule::LockOrder,
            file,
            line,
            message: format!(
                "lock-order cycle: {} — acquisition order must be globally consistent \
                 (see the DOT artifact for every contributing site)",
                cycle.join(" -> ")
            ),
        });
    }

    LockGraph {
        classes,
        edges,
        cycles,
        suppressed_edges: suppressed,
        findings,
    }
}

/// Maps an edge's `short:line` site back to `(full path, line)`.
fn site_to_key(site: &str, files: &[PreparedFile]) -> Option<(String, usize)> {
    let (short, line) = site.rsplit_once(':')?;
    let line: usize = line.parse().ok()?;
    let full = files
        .iter()
        .find(|f| short_path(&f.path) == short)
        .map(|f| f.path.clone())?;
    Some((full, line))
}

fn split_site(site: &str, files: &[PreparedFile]) -> (String, usize) {
    site_to_key(site, files).unwrap_or_else(|| (site.to_string(), 0))
}

/// `crates/rados/src/queue.rs` → `rados/src/queue.rs` (display form).
fn short_path(path: &str) -> String {
    path.strip_prefix("crates/").unwrap_or(path).to_string()
}

/// One live guard while scanning a body.
#[derive(Debug, Clone)]
struct Guard {
    class: String,
    /// The let-binding holding it (`None` for temporaries that die at
    /// the next `;`).
    binding: Option<String>,
    /// Scope depth it was acquired at (released when that scope pops).
    depth: usize,
}

#[allow(clippy::too_many_arguments)]
fn scan_body(
    me: usize,
    info: &FnInfo,
    files: &[PreparedFile],
    fns: &[FnInfo],
    fn_index: &HashMap<String, Vec<usize>>,
    field_class: &HashMap<(usize, String, String), String>,
    file_fields: &HashMap<usize, Vec<(String, String)>>,
    direct_acquires: &mut [BTreeSet<String>],
    calls: &mut [Vec<usize>],
    call_records: &mut Vec<(usize, Vec<String>, usize, usize)>,
    raw_edges: &mut Vec<Edge>,
) {
    let pf = &files[info.file];
    let toks = &pf.lexed.tokens;
    let body = &toks[info.def.body_start..info.def.body_end];
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // Start of the current statement (for let-binding lookback).
    let mut stmt_start = 0usize;

    let mut i = 0;
    while i < body.len() {
        match &body[i].kind {
            TokenKind::Punct('{') => {
                depth += 1;
                stmt_start = i + 1;
            }
            TokenKind::Punct('}') => {
                guards.retain(|g| g.depth < depth);
                depth = depth.saturating_sub(1);
                stmt_start = i + 1;
            }
            TokenKind::Punct(';') => {
                guards.retain(|g| g.binding.is_some() || g.depth < depth);
                stmt_start = i + 1;
            }
            // drop(binding) releases a named guard early.
            TokenKind::Ident(id)
                if id == "drop" && body.get(i + 1).is_some_and(|t| t.is_punct('(')) =>
            {
                if let Some(name) = body.get(i + 2).and_then(|t| t.ident()) {
                    guards.retain(|g| g.binding.as_deref() != Some(name));
                }
            }
            _ => {}
        }

        // Direct acquisition: `<field>.lock()` where field is a Mutex
        // field resolvable in this file.
        if let Some(class) = direct_acquire_at(body, i, info, field_class, file_fields) {
            acquire(
                me,
                &class,
                body,
                i,
                stmt_start,
                depth,
                &mut guards,
                pf,
                &info.def.name,
                direct_acquires,
                raw_edges,
            );
            i += 4; // past `field . lock (`
            continue;
        }

        // Calls: `.name(` methods and `name(` free functions.
        if let Some((callee, recv_hint)) = call_at(body, i) {
            if let Some(target) = resolve_call(&callee, recv_hint.as_deref(), info, fns, fn_index) {
                calls[me].push(target);
                let held: Vec<String> = guards.iter().map(|g| g.class.clone()).collect();
                if !held.is_empty() {
                    call_records.push((me, held, target, body[i].line));
                }
                // A guard-returning helper bound by `let` hands its
                // guard to the caller.
                if fns[target].returns_guard {
                    for class in direct_acquires[target].clone() {
                        acquire(
                            me,
                            &class,
                            body,
                            i,
                            stmt_start,
                            depth,
                            &mut guards,
                            pf,
                            &info.def.name,
                            direct_acquires,
                            raw_edges,
                        );
                    }
                }
            }
        }
        i += 1;
    }
}

/// Registers an acquisition: edges from everything held, then the new
/// guard (let-bound if the statement starts with `let`).
#[allow(clippy::too_many_arguments)]
fn acquire(
    me: usize,
    class: &str,
    body: &[Token],
    i: usize,
    stmt_start: usize,
    depth: usize,
    guards: &mut Vec<Guard>,
    pf: &PreparedFile,
    fn_name: &str,
    direct_acquires: &mut [BTreeSet<String>],
    raw_edges: &mut Vec<Edge>,
) {
    for g in guards.iter() {
        if g.class != class {
            raw_edges.push(Edge {
                from: g.class.clone(),
                to: class.to_string(),
                site: format!("{}:{}", short_path(&pf.path), body[i].line),
                via: fn_name.to_string(),
            });
        }
    }
    direct_acquires[me].insert(class.to_string());
    guards.push(Guard {
        class: class.to_string(),
        binding: let_binding(body, stmt_start, i),
        depth,
    });
}

/// If the statement containing `i` starts with `let`, the bound
/// identifier (the first plain ident after `let [mut]`, skipping
/// `Some`/`Ok`/`Err` wrappers in patterns).
fn let_binding(body: &[Token], stmt_start: usize, i: usize) -> Option<String> {
    let mut j = stmt_start;
    while j < i {
        if body[j].is_ident("let") {
            let mut k = j + 1;
            while k < i {
                match body[k].ident() {
                    Some("mut") | Some("Some") | Some("Ok") | Some("Err") | None => k += 1,
                    Some(name) => return Some(name.to_string()),
                }
            }
            return None;
        }
        // A `let` only heads the statement (or an if/while-let).
        j += 1;
    }
    None
}

/// Detects `field.lock()` at `i` and resolves the field to a lock
/// class: first against the enclosing impl's struct, then any struct
/// in the file; a bare `x.lock()` in a file declaring exactly one
/// Mutex field resolves to it (closure-hidden receivers like the
/// meta-cache's `m.lock()`).
fn direct_acquire_at(
    body: &[Token],
    i: usize,
    info: &FnInfo,
    field_class: &HashMap<(usize, String, String), String>,
    file_fields: &HashMap<usize, Vec<(String, String)>>,
) -> Option<String> {
    let field = body[i].ident()?;
    if !body.get(i + 1)?.is_punct('.')
        || !body.get(i + 2)?.is_ident("lock")
        || !body.get(i + 3)?.is_punct('(')
    {
        return None;
    }
    // Prefer the enclosing impl's own field.
    if let Some(ty) = &info.def.impl_type {
        if let Some(c) = field_class.get(&(info.file, ty.clone(), field.to_string())) {
            return Some(c.clone());
        }
    }
    // Any struct in this file declaring that Mutex field.
    let fields = file_fields.get(&info.file)?;
    if let Some((_, c)) = fields.iter().find(|(name, _)| name == field) {
        return Some(c.clone());
    }
    // Unknown receiver, but the file has exactly one Mutex field.
    if fields.len() == 1 {
        return Some(fields[0].1.clone());
    }
    None
}

/// Detects a call at `i`: returns `(name, receiver hint)`. The hint is
/// the identifier heading the receiver chain for method calls, the
/// path qualifier for `Type::name(...)` calls, `None` for free calls.
fn call_at(body: &[Token], i: usize) -> Option<(String, Option<String>)> {
    let name = body[i].ident()?;
    if !body.get(i + 1)?.is_punct('(') {
        return None;
    }
    if matches!(
        name,
        "fn" | "if" | "while" | "for" | "match" | "return" | "drop" | "let"
    ) {
        return None;
    }
    // Macro input, not a call.
    if i > 0 && body[i - 1].is_punct('!') {
        return None;
    }
    if i > 0 && body[i - 1].is_punct('.') {
        // Method call: walk the receiver chain back to its head ident.
        let mut j = i - 1;
        let mut hint = None;
        while j > 0 {
            j -= 1;
            match &body[j].kind {
                TokenKind::Ident(id) => {
                    hint = Some(id.clone());
                    if j == 0 || !body[j - 1].is_punct('.') && !body[j - 1].is_punct(':') {
                        break;
                    }
                    j = j.saturating_sub(1);
                }
                TokenKind::Punct(')') | TokenKind::Punct(']') => break,
                TokenKind::Punct('.') | TokenKind::Punct(':') => continue,
                _ => break,
            }
        }
        return Some((name.to_string(), hint));
    }
    if i > 1 && body[i - 1].is_punct(':') && body[i - 2].is_punct(':') {
        // `Type::name(...)`: the type is the hint.
        let hint = body.get(i.wrapping_sub(3)).and_then(|t| t.ident());
        return Some((name.to_string(), hint.map(str::to_string)));
    }
    Some((name.to_string(), None))
}

/// Resolves a call to at most one workspace function.
fn resolve_call(
    name: &str,
    recv_hint: Option<&str>,
    caller: &FnInfo,
    fns: &[FnInfo],
    fn_index: &HashMap<String, Vec<usize>>,
) -> Option<usize> {
    let candidates = fn_index.get(name)?;
    // `self.f()` prefers the caller's own file (same impl or module).
    if recv_hint == Some("self") {
        if let Some(&idx) = candidates
            .iter()
            .find(|&&c| fns[c].file == caller.file && fns[c].def.impl_type == caller.def.impl_type)
        {
            return Some(idx);
        }
        if let Some(&idx) = candidates.iter().find(|&&c| fns[c].file == caller.file) {
            return Some(idx);
        }
    }
    // Receiver/type-name hint: `shard.lock()` → impl type `Shard`.
    if let Some(hint) = recv_hint {
        let hint_l = hint.to_lowercase().replace('_', "");
        let hinted: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&c| {
                fns[c].def.impl_type.as_deref().is_some_and(|ty| {
                    let ty_l = ty.to_lowercase();
                    hint_l.contains(&ty_l) || ty_l.contains(hint_l.trim_end_matches('s'))
                })
            })
            .collect();
        if hinted.len() == 1 {
            return Some(hinted[0]);
        }
    }
    // Workspace-unique, non-generic names resolve unhinted; `lock`
    // helpers additionally resolve through the one-Mutex-file rule in
    // `direct_acquire_at`, so skipping them here is safe.
    if candidates.len() == 1 && !COMMON_METHODS.contains(&name) {
        return Some(candidates[0]);
    }
    None
}

/// Tarjan SCC over the class graph; components with 2+ nodes are
/// cycles (class-level self-edges are excluded by construction).
fn find_cycles(classes: &[String], edges: &[Edge]) -> Vec<Vec<String>> {
    let idx: BTreeMap<&str, usize> = classes
        .iter()
        .enumerate()
        .map(|(i, c)| (c.as_str(), i))
        .collect();
    let n = classes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges {
        if let (Some(&a), Some(&b)) = (idx.get(e.from.as_str()), idx.get(e.to.as_str())) {
            adj[a].push(b);
        }
    }

    // Iterative Tarjan.
    let mut index_counter = 0usize;
    let mut indices = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut cycles: Vec<Vec<String>> = Vec::new();

    // (node, child cursor)
    for start in 0..n {
        if indices[start] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&(v, cursor)) = work.last() {
            if cursor == 0 && indices[v] == usize::MAX {
                indices[v] = index_counter;
                lowlink[v] = index_counter;
                index_counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if cursor < adj[v].len() {
                if let Some(top) = work.last_mut() {
                    top.1 += 1;
                }
                let w = adj[v][cursor];
                if indices[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(indices[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == indices[v] {
                    let mut component = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        component.push(classes[w].clone());
                        if w == v {
                            break;
                        }
                    }
                    if component.len() > 1 {
                        component.reverse();
                        cycles.push(component);
                    }
                }
            }
        }
    }
    cycles
}

impl LockGraph {
    /// Renders the graph as DOT (the CI artifact).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph lock_order {\n");
        out.push_str("  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n");
        let cyclic: BTreeSet<&String> = self.cycles.iter().flatten().collect();
        for class in &self.classes {
            if cyclic.contains(class) {
                out.push_str(&format!("  \"{class}\" [color=red, penwidth=2];\n"));
            } else {
                out.push_str(&format!("  \"{class}\";\n"));
            }
        }
        let mut seen = BTreeSet::new();
        for e in &self.edges {
            if seen.insert((&e.from, &e.to)) {
                out.push_str(&format!(
                    "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
                    e.from, e.to, e.site
                ));
            }
        }
        for e in &self.suppressed_edges {
            if seen.insert((&e.from, &e.to)) {
                out.push_str(&format!(
                    "  \"{}\" -> \"{}\" [label=\"{} (allowed)\", style=dashed];\n",
                    e.from, e.to, e.site
                ));
            }
        }
        out.push_str("}\n");
        out
    }

    /// The human-readable lock-order report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "lock-order analysis: {} classes, {} edges, {} cycles\n\n",
            self.classes.len(),
            self.edges.len(),
            self.cycles.len()
        ));
        out.push_str("lock classes:\n");
        for c in &self.classes {
            out.push_str(&format!("  {c}\n"));
        }
        out.push_str("\nordering edges (held -> acquired @ site):\n");
        if self.edges.is_empty() {
            out.push_str("  (none: no site acquires one class while holding another)\n");
        }
        for e in &self.edges {
            out.push_str(&format!(
                "  {} -> {}  @ {} (in {})\n",
                e.from, e.to, e.site, e.via
            ));
        }
        for e in &self.suppressed_edges {
            out.push_str(&format!(
                "  {} -> {}  @ {} (suppressed by allow)\n",
                e.from, e.to, e.site
            ));
        }
        out.push('\n');
        if self.cycles.is_empty() {
            out.push_str("no cycles: a globally consistent acquisition order exists.\n");
        } else {
            for cycle in &self.cycles {
                out.push_str(&format!("CYCLE: {}\n", cycle.join(" -> ")));
            }
        }
        out
    }
}
